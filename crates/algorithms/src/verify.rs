//! Output verifiers: centralized checks that distributed outputs are valid.
//!
//! Every problem the library ships an algorithm for also ships a verifier, so
//! tests and experiments never have to trust an algorithm's own claims.

use avglocal_graph::{ComponentLabels, Graph, Identifier};

/// The largest identifier of each component, indexed by component label, or
/// `None` when `labels` does not cover the graph.
#[must_use]
pub fn component_max_identifiers(
    graph: &Graph,
    labels: &ComponentLabels,
) -> Option<Vec<Identifier>> {
    if labels.node_count() != graph.node_count() {
        return None;
    }
    let mut maxima: Vec<Option<Identifier>> = vec![None; labels.count()];
    for v in graph.nodes() {
        let slot = &mut maxima[labels.label(v) as usize];
        let id = graph.identifier(v);
        if slot.is_none_or(|m| id > m) {
            *slot = Some(id);
        }
    }
    // Every component has at least one node, so every slot is filled.
    maxima.into_iter().collect()
}

/// Checks the component-scoped largest-ID outputs: within every connected
/// component, exactly the node carrying that component's maximum identifier
/// answered `true`.
///
/// On a connected graph this coincides with
/// [`is_correct_largest_id`]; on a disconnected graph it is the natural
/// semantics of the ball-growing algorithm, whose view saturates at the
/// component boundary.
#[must_use]
pub fn is_correct_largest_id_per_component(
    graph: &Graph,
    labels: &ComponentLabels,
    outputs: &[bool],
) -> bool {
    if outputs.len() != graph.node_count() {
        return false;
    }
    let Some(maxima) = component_max_identifiers(graph, labels) else {
        return false;
    };
    graph
        .nodes()
        .all(|v| outputs[v.index()] == (graph.identifier(v) == maxima[labels.label(v) as usize]))
}

/// Checks the component-scoped know-the-leader outputs: every node named the
/// maximum identifier of its own component.
#[must_use]
pub fn is_component_leader_output(
    graph: &Graph,
    labels: &ComponentLabels,
    outputs: &[Identifier],
) -> bool {
    if outputs.len() != graph.node_count() {
        return false;
    }
    let Some(maxima) = component_max_identifiers(graph, labels) else {
        return false;
    };
    graph.nodes().all(|v| outputs[v.index()] == maxima[labels.label(v) as usize])
}

/// Checks that `colors` (indexed by node) is a proper colouring of `graph`
/// with at most `palette_size` colours.
#[must_use]
pub fn is_proper_coloring(graph: &Graph, colors: &[u64], palette_size: u64) -> bool {
    if colors.len() != graph.node_count() {
        return false;
    }
    if colors.iter().any(|&c| c >= palette_size) {
        return false;
    }
    graph.edges().all(|(u, v)| colors[u.index()] != colors[v.index()])
}

/// Checks that `in_set` (indexed by node) describes a maximal independent
/// set of `graph`: no two set members are adjacent, and every non-member has
/// a member neighbour.
#[must_use]
pub fn is_maximal_independent_set(graph: &Graph, in_set: &[bool]) -> bool {
    if in_set.len() != graph.node_count() {
        return false;
    }
    // Independence.
    if graph.edges().any(|(u, v)| in_set[u.index()] && in_set[v.index()]) {
        return false;
    }
    // Maximality: every node outside the set has a neighbour inside.
    graph
        .nodes()
        .all(|v| in_set[v.index()] || graph.neighbors(v).iter().any(|&u| in_set[u.index()]))
}

/// Checks that exactly the node with the maximum identifier answered `true`.
#[must_use]
pub fn is_correct_largest_id(graph: &Graph, outputs: &[bool]) -> bool {
    crate::largest_id::verify_largest_id(graph, outputs)
}

/// Checks that `matched` describes a maximal matching: `matched[v]` is the
/// node `v` is matched with (or `None`), the relation is symmetric, matched
/// pairs are adjacent, and no two unmatched nodes are adjacent.
#[must_use]
pub fn is_maximal_matching(graph: &Graph, matched: &[Option<usize>]) -> bool {
    if matched.len() != graph.node_count() {
        return false;
    }
    for v in graph.nodes() {
        if let Some(partner) = matched[v.index()] {
            if partner >= graph.node_count() {
                return false;
            }
            // Symmetry and adjacency.
            if matched[partner] != Some(v.index()) {
                return false;
            }
            if !graph.contains_edge(v, avglocal_graph::NodeId::new(partner)) {
                return false;
            }
        }
    }
    // Maximality: no edge with both endpoints unmatched.
    graph.edges().all(|(u, v)| matched[u.index()].is_some() || matched[v.index()].is_some())
}

/// Number of distinct colours used by a colouring.
#[must_use]
pub fn color_count(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::generators;

    #[test]
    fn proper_coloring_detection() {
        let g = generators::cycle(6).unwrap();
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1, 0, 1], 2));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 1, 0, 0], 2)); // last edge conflicts
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 1, 0, 2], 2)); // colour out of palette
        assert!(!is_proper_coloring(&g, &[0, 1, 0], 2)); // wrong length
    }

    #[test]
    fn odd_cycle_needs_three_colors() {
        let g = generators::cycle(5).unwrap();
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1, 2], 3));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 1, 0], 3));
    }

    #[test]
    fn mis_detection() {
        let g = generators::cycle(6).unwrap();
        assert!(is_maximal_independent_set(&g, &[true, false, true, false, true, false]));
        // Independent but not maximal.
        assert!(!is_maximal_independent_set(&g, &[true, false, false, false, true, false]));
        // Not independent.
        assert!(!is_maximal_independent_set(&g, &[true, true, false, true, false, false]));
        // Wrong length.
        assert!(!is_maximal_independent_set(&g, &[true, false]));
    }

    #[test]
    fn matching_detection() {
        let g = generators::cycle(6).unwrap();
        // Perfect matching 0-1, 2-3, 4-5.
        let m = vec![Some(1), Some(0), Some(3), Some(2), Some(5), Some(4)];
        assert!(is_maximal_matching(&g, &m));
        // Asymmetric.
        let bad = vec![Some(1), None, None, None, None, None];
        assert!(!is_maximal_matching(&g, &bad));
        // Not maximal: nothing matched.
        assert!(!is_maximal_matching(&g, &[None; 6]));
        // Matched pair not adjacent.
        let far = vec![Some(3), None, None, Some(0), None, None];
        assert!(!is_maximal_matching(&g, &far));
        // Wrong length.
        assert!(!is_maximal_matching(&g, &[None; 3]));
        // Partner index out of range.
        let oob = vec![Some(99), None, None, None, None, None];
        assert!(!is_maximal_matching(&g, &oob));
    }

    #[test]
    fn color_counting() {
        assert_eq!(color_count(&[0, 1, 2, 1, 0]), 3);
        assert_eq!(color_count(&[]), 0);
        assert_eq!(color_count(&[7, 7, 7]), 1);
    }

    #[test]
    fn largest_id_wrapper_delegates() {
        let g = generators::cycle(4).unwrap();
        let mut outputs = vec![false; 4];
        outputs[3] = true;
        assert!(is_correct_largest_id(&g, &outputs));
    }

    /// Two components: a triangle on nodes {0, 1, 2} (ids 10, 30, 20) and an
    /// edge on nodes {3, 4} (ids 50, 40).
    fn two_components() -> (Graph, ComponentLabels) {
        let mut g = Graph::new();
        for id in [10u64, 30, 20, 50, 40] {
            g.add_node(avglocal_graph::Identifier::new(id));
        }
        let v = avglocal_graph::NodeId::new;
        g.add_edge(v(0), v(1)).unwrap();
        g.add_edge(v(1), v(2)).unwrap();
        g.add_edge(v(2), v(0)).unwrap();
        g.add_edge(v(3), v(4)).unwrap();
        let labels = ComponentLabels::of_graph(&g);
        (g, labels)
    }

    #[test]
    fn component_maxima_are_per_component() {
        let (g, labels) = two_components();
        let maxima = component_max_identifiers(&g, &labels).unwrap();
        assert_eq!(maxima.len(), 2);
        assert_eq!(maxima[0].value(), 30);
        assert_eq!(maxima[1].value(), 50);
    }

    #[test]
    fn per_component_largest_id_accepts_component_winners() {
        let (g, labels) = two_components();
        // One winner per component: node 1 (id 30) and node 3 (id 50).
        assert!(is_correct_largest_id_per_component(
            &g,
            &labels,
            &[false, true, false, true, false]
        ));
        // The *global* verifier rejects the same outputs (two winners)…
        assert!(!is_correct_largest_id(&g, &[false, true, false, true, false]));
        // …and the per-component verifier rejects a global-only winner.
        assert!(!is_correct_largest_id_per_component(
            &g,
            &labels,
            &[false, false, false, true, false]
        ));
        assert!(!is_correct_largest_id_per_component(&g, &labels, &[false; 3]));
    }

    #[test]
    fn per_component_leader_outputs() {
        let (g, labels) = two_components();
        let id = avglocal_graph::Identifier::new;
        assert!(is_component_leader_output(&g, &labels, &[id(30), id(30), id(30), id(50), id(50)]));
        // Naming the global maximum from the wrong component is invalid.
        assert!(!is_component_leader_output(
            &g,
            &labels,
            &[id(50), id(50), id(50), id(50), id(50)]
        ));
        assert!(!is_component_leader_output(&g, &labels, &[id(30); 2]));
    }

    #[test]
    fn per_component_checks_agree_with_global_on_connected_graphs() {
        let g = generators::cycle(6).unwrap();
        let labels = ComponentLabels::of_graph(&g);
        let mut outputs = vec![false; 6];
        outputs[5] = true;
        assert!(is_correct_largest_id(&g, &outputs));
        assert!(is_correct_largest_id_per_component(&g, &labels, &outputs));
    }
}
