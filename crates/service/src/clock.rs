//! The one seam through which time enters the service.
//!
//! The workspace's determinism lint bans `Instant`/`SystemTime` from
//! `crates/*` so results can never depend on wall time. A service, however,
//! must meter deadlines and pace retry backoff — so time is injected through
//! the [`Clock`] trait instead of read ambiently. Tests and the chaos
//! harness drive a [`TestClock`] whose ticks advance only when the test says
//! so (making deadline expiry a scripted, reproducible event); production
//! callers hand the service a [`WallClock`], the single audited place the
//! monotonic OS clock is read (see the reasoned `xtask/lint-allow.txt`
//! entry for this file).
//!
//! Ticks are dimensionless `u64`s. [`WallClock`] makes one tick one
//! microsecond; a [`TestClock`] tick means whatever the test wants.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotone tick source plus a way to wait, injected into the service so
/// deadline and backoff behaviour is testable without wall time.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Current tick count; monotone non-decreasing across calls.
    fn now(&self) -> u64;

    /// Blocks (or simulates blocking) for `ticks`; used only by retry
    /// backoff, never on the probe hot path.
    fn sleep(&self, ticks: u64);
}

/// The production clock: monotonic wall time, one tick per microsecond since
/// construction.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose tick 0 is "now".
    #[must_use]
    pub fn new() -> WallClock {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl fmt::Debug for WallClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WallClock").field("elapsed_micros", &self.now()).finish()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn sleep(&self, ticks: u64) {
        std::thread::sleep(Duration::from_micros(ticks));
    }
}

/// A deterministic clock for tests and the chaos harness: ticks advance only
/// through [`TestClock::advance`], [`Clock::sleep`], or an optional
/// per-`now` auto-tick.
///
/// The auto-tick makes deadline expiry scriptable without any cooperating
/// thread: a probe polling its cancellation hook calls [`Clock::now`] once
/// per ball-growth step, so `TestClock::with_autotick(1)` ages a query by
/// exactly one tick per step — "this query times out after three growth
/// steps" becomes a deterministic assertion.
#[derive(Debug)]
pub struct TestClock {
    ticks: AtomicU64,
    autotick: u64,
}

impl TestClock {
    /// A clock frozen at tick 0 until advanced.
    #[must_use]
    pub fn new() -> TestClock {
        TestClock { ticks: AtomicU64::new(0), autotick: 0 }
    }

    /// A clock that additionally advances by `per_now` ticks on every
    /// [`Clock::now`] call (after the value is read).
    #[must_use]
    pub fn with_autotick(per_now: u64) -> TestClock {
        TestClock { ticks: AtomicU64::new(0), autotick: per_now }
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        // ordering: `Relaxed` — the tick counter carries no other state;
        // deadline checks only need a monotone value, which the RMW total
        // order provides.
        self.ticks.fetch_add(ticks, Ordering::Relaxed);
    }
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now(&self) -> u64 {
        if self.autotick == 0 {
            // ordering: `Relaxed` — reading the monotone tick counter; no
            // other memory is synchronised through it.
            return self.ticks.load(Ordering::Relaxed);
        }
        // ordering: `Relaxed` — same counter; fetch_add returns the
        // pre-increment value, so each `now` observes then ages the clock.
        self.ticks.fetch_add(self.autotick, Ordering::Relaxed)
    }

    fn sleep(&self, ticks: u64) {
        // Simulated blocking: waiting *is* advancing, which keeps backoff
        // loops finite and fully deterministic under test.
        self.advance(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_is_frozen_until_advanced() {
        let clock = TestClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.now(), 0);
        clock.advance(5);
        assert_eq!(clock.now(), 5);
        clock.sleep(2);
        assert_eq!(clock.now(), 7);
    }

    #[test]
    fn autotick_ages_the_clock_once_per_now() {
        let clock = TestClock::with_autotick(3);
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.now(), 3);
        assert_eq!(clock.now(), 6);
        clock.advance(100);
        assert_eq!(clock.now(), 109);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        clock.sleep(50);
        assert!(clock.now() >= b);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(WallClock::new()), Box::new(TestClock::new())];
        for clock in &clocks {
            let _ = clock.now();
        }
    }
}
