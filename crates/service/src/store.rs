//! Durable generation storage with deterministic crash recovery.
//!
//! A [`SnapshotStore`] is a directory of epoch-named snapshot files
//! (`gen-<epoch>.snap`), each written through the crash-safe
//! [`CsrGraph::write_to_path`] protocol (write temp sibling, fsync, atomic
//! rename). Recovery scans the directory **newest epoch first** and restores
//! the first snapshot that decodes cleanly — so after a torn or interrupted
//! write the service deterministically falls back to the last durable
//! generation, reporting (not panicking over) everything it skipped.
//! Stray `.tmp` staging files from interrupted writes are ignored outright.

use std::fs;
use std::path::{Path, PathBuf};

use avglocal_graph::{CsrGraph, GraphError};

/// Epoch-named snapshot file prefix.
const FILE_PREFIX: &str = "gen-";
/// Epoch-named snapshot file suffix.
const FILE_SUFFIX: &str = ".snap";

/// A directory of durable snapshot generations.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

/// What [`SnapshotStore::recover`] found.
#[derive(Debug)]
pub struct Recovery {
    /// The newest generation that decoded cleanly, if any.
    pub durable: Option<(u64, CsrGraph)>,
    /// Snapshot files that were skipped, newest first, each with the typed
    /// reason (torn writes surface as
    /// [`GraphError::CorruptSnapshot`]).
    pub skipped: Vec<(PathBuf, GraphError)>,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SnapshotIo`] when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotStore, GraphError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| GraphError::SnapshotIo {
            path: dir.display().to_string(),
            reason: e.to_string(),
        })?;
        Ok(SnapshotStore { dir })
    }

    /// The directory the store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given epoch is stored at.
    #[must_use]
    pub fn path_for(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("{FILE_PREFIX}{epoch:020}{FILE_SUFFIX}"))
    }

    /// Durably persists `csr` as generation `epoch`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SnapshotIo`] when a filesystem step fails; see
    /// [`CsrGraph::write_to_path`] for the crash-safety protocol.
    pub fn persist(&self, epoch: u64, csr: &CsrGraph) -> Result<PathBuf, GraphError> {
        let path = self.path_for(epoch);
        csr.write_to_path(&path)?;
        Ok(path)
    }

    /// Recovers the newest durable generation, deterministically.
    ///
    /// Scans the store for `gen-*.snap` files, sorts by epoch descending
    /// (directory enumeration order never matters), and decodes until one
    /// snapshot passes full validation. Files that fail — torn writes,
    /// truncations, bit flips — are recorded in [`Recovery::skipped`] with
    /// their typed error and skipped; nothing in the scan panics. An
    /// unreadable or empty directory recovers to `None`.
    #[must_use]
    pub fn recover(&self) -> Recovery {
        let mut epochs: Vec<u64> = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(epoch) = parse_epoch(&entry.file_name()) {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        let mut skipped = Vec::new();
        for epoch in epochs {
            let path = self.path_for(epoch);
            match CsrGraph::read_from_path(&path) {
                Ok(csr) => return Recovery { durable: Some((epoch, csr)), skipped },
                Err(e) => skipped.push((path, e)),
            }
        }
        Recovery { durable: None, skipped }
    }
}

/// Parses `gen-<epoch>.snap` file names; anything else (including `.tmp`
/// staging leftovers) is `None`.
fn parse_epoch(name: &std::ffi::OsStr) -> Option<u64> {
    let name = name.to_str()?;
    let digits = name.strip_prefix(FILE_PREFIX)?.strip_suffix(FILE_SUFFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::generators;

    fn scratch_store(tag: &str) -> SnapshotStore {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("avglocal-store-{tag}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    fn teardown(store: &SnapshotStore) {
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_store_recovers_to_none() {
        let store = scratch_store("empty");
        let recovery = store.recover();
        assert!(recovery.durable.is_none());
        assert!(recovery.skipped.is_empty());
        teardown(&store);
    }

    #[test]
    fn newest_durable_epoch_wins() {
        let store = scratch_store("newest");
        let old = generators::cycle(6).unwrap().freeze();
        let new = generators::grid(3, 3).unwrap().freeze();
        store.persist(3, &old).unwrap();
        store.persist(7, &new).unwrap();
        let (epoch, csr) = store.recover().durable.unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(csr, new);
        teardown(&store);
    }

    #[test]
    fn torn_newest_falls_back_to_last_durable() {
        let store = scratch_store("torn");
        let durable = generators::cycle(6).unwrap().freeze();
        store.persist(4, &durable).unwrap();
        // Epoch 9 was torn mid-write (simulated: truncated bytes under the
        // final name) — recovery must skip it with a typed error and fall
        // back to epoch 4, deterministically.
        let bytes = generators::grid(3, 3).unwrap().freeze().to_bytes();
        std::fs::write(store.path_for(9), &bytes[..bytes.len() / 2]).unwrap();
        let recovery = store.recover();
        let (epoch, csr) = recovery.durable.unwrap();
        assert_eq!(epoch, 4);
        assert_eq!(csr, durable);
        assert_eq!(recovery.skipped.len(), 1);
        assert!(matches!(recovery.skipped[0].1, GraphError::CorruptSnapshot { .. }));
        teardown(&store);
    }

    #[test]
    fn tmp_staging_files_are_ignored() {
        let store = scratch_store("tmp");
        let durable = generators::cycle(6).unwrap().freeze();
        store.persist(2, &durable).unwrap();
        // A crash between temp write and rename leaves `gen-5.snap.tmp`.
        std::fs::write(store.dir().join("gen-00000000000000000005.snap.tmp"), b"junk").unwrap();
        let recovery = store.recover();
        assert_eq!(recovery.durable.as_ref().unwrap().0, 2);
        assert!(recovery.skipped.is_empty());
        teardown(&store);
    }

    #[test]
    fn foreign_files_are_ignored() {
        let store = scratch_store("foreign");
        std::fs::write(store.dir().join("README"), b"not a snapshot").unwrap();
        std::fs::write(store.dir().join("gen-abc.snap"), b"bad epoch").unwrap();
        std::fs::write(store.dir().join("gen-.snap"), b"empty epoch").unwrap();
        let recovery = store.recover();
        assert!(recovery.durable.is_none());
        assert!(recovery.skipped.is_empty());
        teardown(&store);
    }

    #[test]
    fn every_generation_is_independently_recoverable() {
        let store = scratch_store("all");
        for (epoch, n) in [(1u64, 4usize), (2, 5), (3, 6)] {
            store.persist(epoch, &generators::cycle(n).unwrap().freeze()).unwrap();
        }
        // Corrupt the newest two; the oldest still recovers.
        for epoch in [2u64, 3] {
            let path = store.path_for(epoch);
            let mut bytes = std::fs::read(&path).unwrap();
            let len = bytes.len();
            bytes[len - 1] ^= 1;
            std::fs::write(&path, &bytes).unwrap();
        }
        let recovery = store.recover();
        assert_eq!(recovery.durable.as_ref().unwrap().0, 1);
        assert_eq!(recovery.skipped.len(), 2);
        teardown(&store);
    }
}
