//! Service tunables and the validating builder.
//!
//! [`ServiceConfig`] stays a plain `Copy` struct with public fields — tests
//! and embedders can still write `ServiceConfig { max_in_flight: 1, ..Default::default() }`
//! — but the recommended construction path is [`ServiceConfig::builder`],
//! which rejects the degenerate settings a literal silently accepts: a
//! zero admission bound sheds every request, a zero backoff base makes
//! latest-consistency retries spin without ever yielding the clock, and a
//! zero batch shard size would divide by zero when sharding a batch.

use std::fmt;

use avglocal_runtime::Scheduling;

/// Tunables of a [`RadiusQueryService`](crate::RadiusQueryService).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Admission bound: requests beyond this many in flight are shed.
    pub max_in_flight: usize,
    /// Deadline budget, in clock ticks, of queries that do not bring their
    /// own ([`u64::MAX`] = effectively unlimited).
    pub default_deadline: u64,
    /// How many times a latest-consistency query retries after losing its
    /// pinned generation to a swap.
    pub retry_limit: u32,
    /// Backoff before retry `k` (1-based) is `backoff_base << (k - 1)`
    /// ticks — bounded exponential.
    pub backoff_base: u64,
    /// Optional ball-radius hard limit applied to every generation's
    /// session (see [`avglocal_runtime::FrozenExecutor::with_max_radius`]).
    pub max_radius: Option<usize>,
    /// Nodes per dynamically claimed shard of a batched query. `1` (the
    /// default) is pure per-node dynamic scheduling — the right choice for
    /// the paper's skewed per-node costs; larger shards amortise claim
    /// traffic on huge uniform batches.
    pub batch_shard: usize,
    /// How batch shards are distributed over the persistent pool.
    pub batch_scheduling: Scheduling,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight: 64,
            default_deadline: u64::MAX,
            retry_limit: 3,
            backoff_base: 1,
            max_radius: None,
            batch_shard: 1,
            batch_scheduling: Scheduling::WorkStealing,
        }
    }
}

impl ServiceConfig {
    /// A validating builder seeded with the defaults.
    #[must_use]
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder { config: ServiceConfig::default() }
    }
}

/// Builder for [`ServiceConfig`]; see [`ServiceConfig::builder`].
///
/// # Examples
///
/// ```
/// use avglocal_service::{InvalidConfig, ServiceConfig};
///
/// let config = ServiceConfig::builder().max_in_flight(8).batch_shard(16).build().unwrap();
/// assert_eq!(config.max_in_flight, 8);
///
/// let err = ServiceConfig::builder().backoff_base(0).build().unwrap_err();
/// assert_eq!(err, InvalidConfig::ZeroBackoffBase);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the admission bound. Zero is rejected by [`Self::build`].
    #[must_use]
    pub fn max_in_flight(mut self, bound: usize) -> Self {
        self.config.max_in_flight = bound;
        self
    }

    /// Sets the default deadline budget in clock ticks.
    #[must_use]
    pub fn default_deadline(mut self, ticks: u64) -> Self {
        self.config.default_deadline = ticks;
        self
    }

    /// Sets the latest-consistency retry limit.
    #[must_use]
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.config.retry_limit = retries;
        self
    }

    /// Sets the backoff base. Zero is rejected by [`Self::build`].
    #[must_use]
    pub fn backoff_base(mut self, ticks: u64) -> Self {
        self.config.backoff_base = ticks;
        self
    }

    /// Sets the optional ball-radius hard limit.
    #[must_use]
    pub fn max_radius(mut self, limit: Option<usize>) -> Self {
        self.config.max_radius = limit;
        self
    }

    /// Sets the batch shard size. Zero is rejected by [`Self::build`].
    #[must_use]
    pub fn batch_shard(mut self, nodes: usize) -> Self {
        self.config.batch_shard = nodes;
        self
    }

    /// Sets the batch scheduling strategy.
    #[must_use]
    pub fn batch_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.config.batch_scheduling = scheduling;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// A typed [`InvalidConfig`] naming the first degenerate setting: zero
    /// `max_in_flight` (the service would shed everything), zero
    /// `backoff_base` (retries would spin without sleeping), or zero
    /// `batch_shard` (batches could not be sharded).
    pub fn build(self) -> std::result::Result<ServiceConfig, InvalidConfig> {
        if self.config.max_in_flight == 0 {
            return Err(InvalidConfig::ZeroMaxInFlight);
        }
        if self.config.backoff_base == 0 {
            return Err(InvalidConfig::ZeroBackoffBase);
        }
        if self.config.batch_shard == 0 {
            return Err(InvalidConfig::ZeroBatchShard);
        }
        Ok(self.config)
    }
}

/// A degenerate [`ServiceConfig`] rejected by
/// [`ServiceConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidConfig {
    /// `max_in_flight == 0`: every request would be shed at admission.
    ZeroMaxInFlight,
    /// `backoff_base == 0`: latest-consistency retries would never back
    /// off, spinning on the clock.
    ZeroBackoffBase,
    /// `batch_shard == 0`: a batch could not be split into shards.
    ZeroBatchShard,
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidConfig::ZeroMaxInFlight => {
                write!(f, "max_in_flight must be positive: a zero bound sheds every request")
            }
            InvalidConfig::ZeroBackoffBase => {
                write!(f, "backoff_base must be positive: zero backoff spins on retry")
            }
            InvalidConfig::ZeroBatchShard => {
                write!(f, "batch_shard must be positive: batches are sharded by this size")
            }
        }
    }
}

impl std::error::Error for InvalidConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(ServiceConfig::builder().build().unwrap(), ServiceConfig::default());
    }

    #[test]
    fn builder_rejects_each_degenerate_setting() {
        assert_eq!(
            ServiceConfig::builder().max_in_flight(0).build().unwrap_err(),
            InvalidConfig::ZeroMaxInFlight
        );
        assert_eq!(
            ServiceConfig::builder().backoff_base(0).build().unwrap_err(),
            InvalidConfig::ZeroBackoffBase
        );
        assert_eq!(
            ServiceConfig::builder().batch_shard(0).build().unwrap_err(),
            InvalidConfig::ZeroBatchShard
        );
    }

    #[test]
    fn builder_sets_every_field() {
        let config = ServiceConfig::builder()
            .max_in_flight(4)
            .default_deadline(100)
            .retry_limit(7)
            .backoff_base(2)
            .max_radius(Some(9))
            .batch_shard(32)
            .batch_scheduling(Scheduling::StaticChunks)
            .build()
            .unwrap();
        let expected = ServiceConfig {
            max_in_flight: 4,
            default_deadline: 100,
            retry_limit: 7,
            backoff_base: 2,
            max_radius: Some(9),
            batch_shard: 32,
            batch_scheduling: Scheduling::StaticChunks,
        };
        assert_eq!(config, expected);
    }
}
