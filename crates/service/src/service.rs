//! The long-lived radius-query service: epoch-published generations,
//! bounded admission, deadlines, and retry.
//!
//! # Generation lifecycle
//!
//! The service serves every query from an immutable [`Generation`] — an
//! epoch number plus a [`FrozenExecutor`] session over one validated
//! [`CsrGraph`] snapshot. Publication is epoch-based:
//!
//! 1. a candidate snapshot is built **off to the side** (the service keeps
//!    answering on the current generation throughout);
//! 2. the candidate is validated through the snapshot codec — and a build
//!    that panics is caught — so a bad candidate is **rolled back**, never
//!    published ([`ServiceError::PublishRejected`] /
//!    [`ServiceError::PublishPanicked`]);
//! 3. an accepted candidate is installed by atomically swapping the shared
//!    `Arc<Generation>` under a mutex, bumping the epoch.
//!
//! Readers **pin** a generation (clone the `Arc`) on admission and finish
//! their probe on it even if a swap lands mid-probe: a completed answer is
//! always internally consistent with exactly one published generation, and
//! carries that generation's epoch so callers can tell which.
//!
//! # Request lifecycle
//!
//! Admission is bounded: at most `max_in_flight` requests hold admission at
//! once, and the excess is shed immediately with
//! [`ServiceError::Overloaded`] — typed backpressure instead of an unbounded
//! queue. A batched query ([`RadiusQueryService::query_batch`]) counts as
//! **one** admission slot regardless of how many nodes it shards across the
//! pool. Admitted requests carry a deadline budget in [`Clock`] ticks,
//! enforced by cooperative cancellation polled once per ball-growth step
//! ([`ServiceError::DeadlineExceeded`]).
//!
//! Every entry point funnels through one implementation path driven by
//! [`QueryOptions`]: the deadline budget plus a [`Consistency`] mode.
//! Pinned consistency (the default) serves from the generation pinned at
//! admission; latest consistency re-probes with bounded exponential backoff
//! when a swap invalidated the pinned generation mid-probe, giving up with
//! [`ServiceError::StaleGeneration`]. The historical names
//! ([`RadiusQueryService::query`], [`RadiusQueryService::query_with_deadline`],
//! [`RadiusQueryService::query_latest`]) are thin wrappers over
//! [`RadiusQueryService::query_with`].

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use avglocal_graph::{CsrGraph, GraphError, NodeId};
use avglocal_runtime::{BallAlgorithm, FrozenExecutor, Knowledge, RuntimeError};

use crate::batch::{Consistency, QueryOptions};
use crate::clock::Clock;
use crate::config::ServiceConfig;
use crate::error::{Result, ServiceError};

/// One published snapshot generation: an epoch plus a frozen session.
#[derive(Debug)]
pub struct Generation {
    epoch: u64,
    session: FrozenExecutor,
}

impl Generation {
    /// The generation's epoch; strictly increasing across publishes.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen session queries on this generation run against.
    #[must_use]
    pub fn session(&self) -> &FrozenExecutor {
        &self.session
    }

    /// Number of nodes in this generation's snapshot.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.session.node_count()
    }
}

/// A completed answer: the algorithm's output, the ball radius it needed,
/// and the epoch of the generation it was computed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryReply<O> {
    /// The algorithm's output for the queried node.
    pub output: O,
    /// The ball radius at which the algorithm decided.
    pub radius: usize,
    /// Epoch of the generation the answer is consistent with.
    pub epoch: u64,
}

/// Monotone counters describing the service's lifetime, snapshotted by
/// [`RadiusQueryService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests that passed admission.
    pub admitted: u64,
    /// Requests shed at admission ([`ServiceError::Overloaded`]).
    pub shed: u64,
    /// Probes cancelled by deadline expiry.
    pub deadline_expired: u64,
    /// Latest-generation queries that exhausted their retries.
    pub stale: u64,
    /// Probe re-runs performed by latest-generation queries.
    pub retries: u64,
    /// Generations successfully published (the initial one included).
    pub publishes: u64,
    /// Candidate generations rejected by validation.
    pub publish_rejected: u64,
    /// Candidate generations whose build panicked.
    pub publish_panicked: u64,
    /// Batched queries admitted (each holds a single admission slot).
    pub batches: u64,
    /// Individual node entries probed by batched queries, retries included.
    pub batch_entries: u64,
}

/// Lifetime counters, all monotone; see `StatsSnapshot` for meanings.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    admitted: AtomicU64,
    shed: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    stale: AtomicU64,
    retries: AtomicU64,
    publishes: AtomicU64,
    publish_rejected: AtomicU64,
    publish_panicked: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batch_entries: AtomicU64,
}

/// A long-lived, failure-tolerant in-process radius-query service over
/// epoch-published [`FrozenExecutor`] generations.
///
/// See the crate-level docs for the generation and request lifecycles. The
/// service is `Sync`: readers query through `&self` from any
/// number of threads while publishers swap generations concurrently.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use avglocal_graph::{generators, NodeId};
/// use avglocal_runtime::{examples::NaiveLargestId, Knowledge};
/// use avglocal_service::{RadiusQueryService, ServiceConfig, TestClock};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let csr = generators::cycle(16)?.freeze();
/// let service = RadiusQueryService::new(
///     NaiveLargestId,
///     Knowledge::none(),
///     csr,
///     Arc::new(TestClock::new()),
///     ServiceConfig::default(),
/// );
/// let reply = service.query(NodeId::new(3))?;
/// assert_eq!(reply.epoch, 1);
/// # Ok(())
/// # }
/// ```
pub struct RadiusQueryService<A: BallAlgorithm> {
    algorithm: A,
    knowledge: Knowledge,
    clock: Arc<dyn Clock>,
    config: ServiceConfig,
    /// The published generation; swapped atomically under the lock, pinned
    /// by readers via `Arc` clone.
    current: Mutex<Arc<Generation>>,
    /// Requests currently holding admission.
    in_flight: AtomicUsize,
    counters: Counters,
}

impl<A: BallAlgorithm> fmt::Debug for RadiusQueryService<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RadiusQueryService")
            .field("epoch", &self.current_epoch())
            .field("config", &self.config)
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// RAII admission slot: releases the in-flight count even when the probe
/// path unwinds, so a panicking algorithm cannot leak capacity.
pub(crate) struct Admission<'a> {
    in_flight: &'a AtomicUsize,
}

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<A: BallAlgorithm> RadiusQueryService<A> {
    /// Starts a service on `csr` as generation epoch 1.
    ///
    /// The initial snapshot is installed as given (the caller built it
    /// in-process); snapshots from untrusted bytes go through
    /// [`RadiusQueryService::publish_bytes`] instead.
    #[must_use]
    pub fn new(
        algorithm: A,
        knowledge: Knowledge,
        csr: CsrGraph,
        clock: Arc<dyn Clock>,
        config: ServiceConfig,
    ) -> Self {
        let session = Self::session_for(csr, &config);
        let service = RadiusQueryService {
            algorithm,
            knowledge,
            clock,
            config,
            current: Mutex::new(Arc::new(Generation { epoch: 1, session })),
            in_flight: AtomicUsize::new(0),
            counters: Counters::default(),
        };
        service.counters.publishes.fetch_add(1, Ordering::Relaxed);
        service
    }

    fn session_for(csr: CsrGraph, config: &ServiceConfig) -> FrozenExecutor {
        let session = FrozenExecutor::from_csr(csr);
        match config.max_radius {
            Some(limit) => session.with_max_radius(limit),
            None => session,
        }
    }

    /// The currently published generation's epoch.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.pin().epoch
    }

    /// Pins the currently published generation: the returned `Arc` keeps it
    /// alive (and answerable-against) across any number of later swaps.
    #[must_use]
    pub fn pin(&self) -> Arc<Generation> {
        Arc::clone(&self.current.lock().expect("generation lock poisoned"))
    }

    /// A snapshot of the service's lifetime counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            deadline_expired: self.counters.deadline_expired.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            publishes: self.counters.publishes.load(Ordering::Relaxed),
            publish_rejected: self.counters.publish_rejected.load(Ordering::Relaxed),
            publish_panicked: self.counters.publish_panicked.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batch_entries: self.counters.batch_entries.load(Ordering::Relaxed),
        }
    }

    /// The service's clock, for probe paths measuring deadline budgets.
    pub(crate) fn clock(&self) -> &dyn Clock {
        self.clock.as_ref()
    }

    /// The service's configuration.
    pub(crate) fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The algorithm every probe runs.
    pub(crate) fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The a-priori knowledge handed to every probe.
    pub(crate) fn knowledge(&self) -> Knowledge {
        self.knowledge
    }

    /// The lifetime counters, for probe paths outside this module.
    pub(crate) fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The effective deadline budget of a request: its own, or the
    /// configured default.
    pub(crate) fn budget_of(&self, options: &QueryOptions) -> u64 {
        options.deadline.unwrap_or(self.config.default_deadline)
    }

    /// Queries `node` on the currently published generation with the
    /// configured default deadline. Equivalent to
    /// [`RadiusQueryService::query_with`] with default [`QueryOptions`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when shed at admission,
    /// [`ServiceError::DeadlineExceeded`] when the budget expires mid-probe,
    /// [`ServiceError::Probe`] for algorithm/runtime failures.
    pub fn query(&self, node: NodeId) -> Result<QueryReply<A::Output>> {
        self.query_with(node, QueryOptions::new())
    }

    /// Like [`RadiusQueryService::query`] with an explicit deadline budget
    /// in clock ticks. Equivalent to [`RadiusQueryService::query_with`]
    /// with `QueryOptions::new().with_deadline(budget)`.
    ///
    /// # Errors
    ///
    /// Same as [`RadiusQueryService::query`].
    pub fn query_with_deadline(&self, node: NodeId, budget: u64) -> Result<QueryReply<A::Output>> {
        self.query_with(node, QueryOptions::new().with_deadline(budget))
    }

    /// Queries `node`, insisting the answer come from a generation that is
    /// **still current** when the probe completes: if a swap invalidated the
    /// pinned generation mid-probe, the query retries (with bounded
    /// exponential backoff) on the new one. Equivalent to
    /// [`RadiusQueryService::query_with`] with
    /// `Consistency::Latest { retry_limit }` taken from the configuration.
    ///
    /// # Errors
    ///
    /// Same as [`RadiusQueryService::query`], plus
    /// [`ServiceError::StaleGeneration`] when `retry_limit` consecutive
    /// attempts were each invalidated by a swap. Each attempt gets the full
    /// default deadline budget.
    pub fn query_latest(&self, node: NodeId) -> Result<QueryReply<A::Output>> {
        self.query_with(
            node,
            QueryOptions::new()
                .with_consistency(Consistency::Latest { retry_limit: self.config.retry_limit }),
        )
    }

    /// The single-node entry point every `query*` wrapper forwards to: one
    /// admission slot, then one probe per consistency attempt.
    ///
    /// # Errors
    ///
    /// Per [`QueryOptions`]: [`ServiceError::Overloaded`],
    /// [`ServiceError::DeadlineExceeded`], [`ServiceError::Probe`], and —
    /// under [`Consistency::Latest`] — [`ServiceError::StaleGeneration`].
    pub fn query_with(&self, node: NodeId, options: QueryOptions) -> Result<QueryReply<A::Output>> {
        let _slot = self.admit()?;
        let budget = self.budget_of(&options);
        self.with_consistency(options.consistency, |generation| {
            self.probe(generation, node, budget)
        })
    }

    /// The one consistency loop shared by single and batched queries: pin,
    /// attempt, and — under latest consistency — re-attempt with bounded
    /// exponential backoff while swaps invalidate the pinned generation.
    ///
    /// Admission is the caller's job (a batch holds one slot across every
    /// attempt).
    pub(crate) fn with_consistency<T>(
        &self,
        consistency: Consistency,
        mut attempt: impl FnMut(&Arc<Generation>) -> Result<T>,
    ) -> Result<T> {
        let retry_limit = match consistency {
            Consistency::Pinned => return attempt(&self.pin()),
            Consistency::Latest { retry_limit } => retry_limit,
        };
        let mut tries: u32 = 0;
        loop {
            let generation = self.pin();
            let reply = attempt(&generation)?;
            if self.current_epoch() == generation.epoch {
                return Ok(reply);
            }
            if tries >= retry_limit {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::StaleGeneration { retries: tries });
            }
            tries += 1;
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            self.clock.sleep(self.config.backoff_base << (tries - 1));
        }
    }

    /// Claims an admission slot or sheds the request.
    pub(crate) fn admit(&self) -> Result<Admission<'_>> {
        let before = self.in_flight.fetch_add(1, Ordering::Relaxed);
        if before >= self.config.max_in_flight {
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                in_flight: before,
                limit: self.config.max_in_flight,
            });
        }
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Admission { in_flight: &self.in_flight })
    }

    /// One probe attempt on a pinned generation, under a deadline budget.
    fn probe(
        &self,
        generation: &Generation,
        node: NodeId,
        budget: u64,
    ) -> Result<QueryReply<A::Output>> {
        if node.index() >= generation.node_count() {
            return Err(ServiceError::Probe(RuntimeError::Graph(GraphError::NodeOutOfBounds {
                node,
                node_count: generation.node_count(),
            })));
        }
        let start = self.clock.now();
        let clock = self.clock.as_ref();
        let result = generation.session.run_node_with_cancel(
            node,
            &self.algorithm,
            self.knowledge,
            &mut |_radius| clock.now().saturating_sub(start) >= budget,
        );
        match result {
            Ok((output, radius)) => Ok(QueryReply { output, radius, epoch: generation.epoch }),
            Err(RuntimeError::Cancelled { radius, .. }) => {
                self.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::DeadlineExceeded { budget, radius })
            }
            Err(e) => Err(ServiceError::Probe(e)),
        }
    }

    /// Publishes a candidate built by `build`, catching a panicking build.
    ///
    /// The build runs off to the side — queries keep being served from the
    /// current generation — and its result goes through full codec
    /// validation before the swap, so a panicked or invalid candidate is
    /// rolled back without ever being visible to a reader.
    ///
    /// # Errors
    ///
    /// [`ServiceError::PublishPanicked`] when `build` panics,
    /// [`ServiceError::PublishRejected`] when validation fails. The
    /// previously published generation stays current in both cases.
    pub fn publish_with(&self, build: impl FnOnce() -> CsrGraph) -> Result<u64> {
        match catch_unwind(AssertUnwindSafe(build)) {
            Ok(csr) => self.publish_csr(csr),
            Err(payload) => {
                self.counters.publish_panicked.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::PublishPanicked { reason: panic_reason(&*payload) })
            }
        }
    }

    /// Validates `csr` through the snapshot codec and, on success, installs
    /// it as the next generation.
    ///
    /// # Errors
    ///
    /// [`ServiceError::PublishRejected`] when the candidate fails
    /// validation; the current generation is untouched.
    pub fn publish_csr(&self, csr: CsrGraph) -> Result<u64> {
        // Encode-then-decode pushes the candidate through every structural
        // check the codec enforces on untrusted bytes, so nothing invalid
        // can be swapped in regardless of how the candidate was produced.
        let validated = CsrGraph::from_bytes(&csr.to_bytes()).map_err(|source| {
            self.counters.publish_rejected.fetch_add(1, Ordering::Relaxed);
            ServiceError::PublishRejected { source }
        })?;
        Ok(self.install(validated))
    }

    /// Decodes untrusted snapshot bytes and, on success, installs them as
    /// the next generation.
    ///
    /// # Errors
    ///
    /// [`ServiceError::PublishRejected`] carrying the codec's typed
    /// rejection; the current generation is untouched.
    pub fn publish_bytes(&self, bytes: &[u8]) -> Result<u64> {
        let csr = CsrGraph::from_bytes(bytes).map_err(|source| {
            self.counters.publish_rejected.fetch_add(1, Ordering::Relaxed);
            ServiceError::PublishRejected { source }
        })?;
        Ok(self.install(csr))
    }

    /// Swaps a validated snapshot in as the next generation.
    fn install(&self, csr: CsrGraph) -> u64 {
        let session = Self::session_for(csr, &self.config);
        let mut current = self.current.lock().expect("generation lock poisoned");
        let epoch = current.epoch + 1;
        *current = Arc::new(Generation { epoch, session });
        self.counters.publishes.fetch_add(1, Ordering::Relaxed);
        epoch
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use avglocal_graph::generators;
    use avglocal_runtime::examples::NaiveLargestId;
    use avglocal_runtime::BallExecutor;

    fn service_on_cycle(n: usize, config: ServiceConfig) -> RadiusQueryService<NaiveLargestId> {
        RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            generators::cycle(n).unwrap().freeze(),
            Arc::new(TestClock::new()),
            config,
        )
    }

    #[test]
    fn answers_match_the_sequential_reference() {
        let csr = generators::grid(4, 5).unwrap().freeze();
        let reference = BallExecutor::new()
            .run_frozen_sequential(&csr, &NaiveLargestId, Knowledge::none())
            .unwrap();
        let service = RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            csr,
            Arc::new(TestClock::new()),
            ServiceConfig::default(),
        );
        for v in (0..20).map(NodeId::new) {
            let reply = service.query(v).unwrap();
            assert_eq!(reply.output, *reference.output(v));
            assert_eq!(reply.radius, reference.radius(v));
            assert_eq!(reply.epoch, 1);
        }
    }

    #[test]
    fn publish_bumps_the_epoch_and_serves_the_new_snapshot() {
        let service = service_on_cycle(8, ServiceConfig::default());
        assert_eq!(service.current_epoch(), 1);
        let epoch = service.publish_csr(generators::cycle(12).unwrap().freeze()).unwrap();
        assert_eq!(epoch, 2);
        let reply = service.query(NodeId::new(10)).unwrap();
        assert_eq!(reply.epoch, 2);
        assert_eq!(service.stats().publishes, 2);
    }

    #[test]
    fn pinned_generation_survives_swaps() {
        let service = service_on_cycle(8, ServiceConfig::default());
        let pinned = service.pin();
        service.publish_csr(generators::cycle(30).unwrap().freeze()).unwrap();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.node_count(), 8);
        assert_eq!(service.current_epoch(), 2);
    }

    #[test]
    fn panicking_build_is_rolled_back() {
        let service = service_on_cycle(8, ServiceConfig::default());
        let err = service.publish_with(|| panic!("injected build panic")).unwrap_err();
        assert!(matches!(err, ServiceError::PublishPanicked { .. }), "{err}");
        assert!(err.to_string().contains("injected build panic"));
        assert_eq!(service.current_epoch(), 1);
        assert_eq!(service.stats().publish_panicked, 1);
        // The service still answers on the rolled-back-to generation.
        assert_eq!(service.query(NodeId::new(0)).unwrap().epoch, 1);
    }

    #[test]
    fn corrupt_bytes_are_rejected_typed_and_rolled_back() {
        let service = service_on_cycle(8, ServiceConfig::default());
        let mut bytes = generators::cycle(12).unwrap().freeze().to_bytes();
        bytes[30] ^= 0x40;
        let err = service.publish_bytes(&bytes).unwrap_err();
        assert!(matches!(err, ServiceError::PublishRejected { .. }), "{err}");
        assert_eq!(service.current_epoch(), 1);
        assert_eq!(service.stats().publish_rejected, 1);
    }

    #[test]
    fn admission_bound_sheds_typed() {
        let service =
            service_on_cycle(8, ServiceConfig { max_in_flight: 0, ..ServiceConfig::default() });
        let err = service.query(NodeId::new(0)).unwrap_err();
        assert!(matches!(err, ServiceError::Overloaded { limit: 0, .. }), "{err}");
        assert_eq!(service.stats().shed, 1);
        assert_eq!(service.stats().admitted, 0);
    }

    #[test]
    fn shedding_releases_no_capacity_it_never_held() {
        // A shed request must leave in_flight at zero, so later requests
        // are admitted again once load drops.
        let service =
            service_on_cycle(8, ServiceConfig { max_in_flight: 1, ..ServiceConfig::default() });
        assert!(service.query(NodeId::new(0)).is_ok());
        assert!(service.query(NodeId::new(1)).is_ok());
        assert_eq!(service.stats().shed, 0);
    }

    #[test]
    fn expired_deadline_is_typed_and_counts() {
        // An autoticking clock ages the query one tick per growth step; a
        // zero budget expires at radius 0, before any growth.
        let service = RadiusQueryService::new(
            NaiveLargestId,
            Knowledge::none(),
            generators::cycle(64).unwrap().freeze(),
            Arc::new(TestClock::with_autotick(1)),
            ServiceConfig::default(),
        );
        let err = service.query_with_deadline(NodeId::new(0), 0).unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded { budget: 0, radius: 0 }), "{err}");
        assert_eq!(service.stats().deadline_expired, 1);
        // A generous budget completes.
        let reply = service.query_with_deadline(NodeId::new(0), u64::MAX).unwrap();
        assert_eq!(reply.epoch, 1);
    }

    #[test]
    fn out_of_bounds_node_is_a_typed_probe_error() {
        let service = service_on_cycle(8, ServiceConfig::default());
        let err = service.query(NodeId::new(8)).unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Probe(RuntimeError::Graph(GraphError::NodeOutOfBounds {
                    node_count: 8,
                    ..
                }))
            ),
            "{err}"
        );
    }

    #[test]
    fn query_latest_returns_current_epoch_answers() {
        let service = service_on_cycle(16, ServiceConfig::default());
        let reply = service.query_latest(NodeId::new(3)).unwrap();
        assert_eq!(reply.epoch, 1);
        service.publish_csr(generators::cycle(16).unwrap().freeze()).unwrap();
        let reply = service.query_latest(NodeId::new(3)).unwrap();
        assert_eq!(reply.epoch, 2);
    }

    #[test]
    fn max_radius_applies_to_every_generation() {
        struct DecideAtRadius(usize);
        impl BallAlgorithm for DecideAtRadius {
            type Output = usize;
            fn decide(
                &self,
                view: &avglocal_runtime::LocalView,
                _knowledge: &Knowledge,
            ) -> Option<usize> {
                (view.radius() >= self.0).then_some(view.radius())
            }
        }
        let service = RadiusQueryService::new(
            DecideAtRadius(10),
            Knowledge::none(),
            generators::cycle(64).unwrap().freeze(),
            Arc::new(TestClock::new()),
            ServiceConfig { max_radius: Some(2), ..ServiceConfig::default() },
        );
        let err = service.query(NodeId::new(0)).unwrap_err();
        assert!(
            matches!(err, ServiceError::Probe(RuntimeError::RoundLimitExceeded { limit: 2, .. })),
            "{err}"
        );
    }
}
