//! The service's typed failure surface.
//!
//! Every way the service declines, abandons, or rejects work is a variant
//! here — load shedding, deadline expiry, generation churn, failed
//! publication — so callers can tell "retry later" apart from "your snapshot
//! is bad" without parsing strings. Probe-level failures from the runtime
//! pass through wrapped, keeping their own typed detail.

use std::error::Error;
use std::fmt;

use avglocal_graph::GraphError;
use avglocal_runtime::RuntimeError;

/// Errors reported by [`crate::RadiusQueryService`].
///
/// `#[non_exhaustive]`: later versions may add variants (e.g. new admission
/// policies), so downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded admission queue is full; the request was shed without
    /// touching a generation. Retry after backing off.
    Overloaded {
        /// Requests in flight when this one arrived.
        in_flight: usize,
        /// The configured admission bound it hit.
        limit: usize,
    },
    /// The request's deadline budget expired mid-probe; the probe was
    /// cooperatively cancelled at a ball-growth step boundary.
    DeadlineExceeded {
        /// The tick budget the request was admitted with.
        budget: u64,
        /// The ball radius the probe had reached when it was cancelled.
        radius: usize,
    },
    /// A latest-generation request kept losing its pinned generation to
    /// concurrent swaps and exhausted its retry budget.
    StaleGeneration {
        /// Completed probe attempts, each invalidated by a swap.
        retries: u32,
    },
    /// A candidate generation failed snapshot validation and was rolled
    /// back; the previously published generation is untouched.
    PublishRejected {
        /// The codec's typed rejection.
        source: GraphError,
    },
    /// A candidate generation's build panicked and was rolled back; the
    /// previously published generation is untouched.
    PublishPanicked {
        /// The panic payload, when it carried a message.
        reason: String,
    },
    /// The probe itself failed (non-terminating algorithm, round limit,
    /// out-of-bounds node, ...); the underlying runtime error, verbatim.
    Probe(RuntimeError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, limit } => {
                write!(f, "overloaded: {in_flight} requests in flight at the limit of {limit}")
            }
            ServiceError::DeadlineExceeded { budget, radius } => {
                write!(f, "deadline of {budget} ticks expired at ball radius {radius}")
            }
            ServiceError::StaleGeneration { retries } => {
                write!(f, "generation swapped out from under the request {retries} times")
            }
            ServiceError::PublishRejected { source } => {
                write!(f, "candidate generation rejected: {source}")
            }
            ServiceError::PublishPanicked { reason } => {
                write!(f, "candidate generation build panicked: {reason}")
            }
            ServiceError::Probe(e) => write!(f, "probe failed: {e}"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::PublishRejected { source } => Some(source),
            ServiceError::Probe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ServiceError {
    fn from(e: RuntimeError) -> Self {
        ServiceError::Probe(e)
    }
}

/// Convenience alias for results whose error type is [`ServiceError`].
pub type Result<T> = std::result::Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;
    use avglocal_graph::NodeId;

    #[test]
    fn display_messages_are_informative() {
        let e = ServiceError::Overloaded { in_flight: 64, limit: 64 };
        assert!(e.to_string().contains("64"));

        let e = ServiceError::DeadlineExceeded { budget: 120, radius: 4 };
        assert!(e.to_string().contains("120"));
        assert!(e.to_string().contains("radius 4"));

        let e = ServiceError::StaleGeneration { retries: 3 };
        assert!(e.to_string().contains('3'));

        let e = ServiceError::PublishRejected {
            source: GraphError::CorruptSnapshot { offset: 0, reason: "bad magic".into() },
        };
        assert!(e.to_string().contains("bad magic"));
        assert!(e.source().is_some());

        let e = ServiceError::PublishPanicked { reason: "boom".into() };
        assert!(e.to_string().contains("boom"));

        let e = ServiceError::Probe(RuntimeError::NonTerminating { node: NodeId::new(2) });
        assert!(e.to_string().contains("v2"));
        assert!(e.source().is_some());
    }

    #[test]
    fn runtime_errors_convert() {
        let re = RuntimeError::Cancelled { node: NodeId::new(1), radius: 2 };
        let se: ServiceError = re.clone().into();
        assert_eq!(se, ServiceError::Probe(re));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ServiceError>();
    }
}
