//! Deterministic chaos harness: scripted queries, swaps, and fault storms.
//!
//! The harness drives a [`RadiusQueryService`] through a scripted
//! interleaving of concurrent readers, epoch swaps, corrupt-bytes publish
//! attempts, `compat/rayon` failpoint panic storms inside candidate builds,
//! and injected worker kills — then checks the service's core promise: a
//! request is either **shed or failed with a typed error**, or it completes
//! with an answer **bit-identical** to the sequential reference execution on
//! the generation (epoch) it reports it was served from. Scripted reader
//! turns include **batched queries** racing the same storms: deadline storms
//! mid-batch must yield fully-expired typed partial replies, and every
//! *completed* batch entry is held to the same bit-identity invariant as a
//! single query.
//!
//! Everything that must be reproducible is: the publish schedule, the
//! per-reader query scripts, and the epoch → graph mapping are all derived
//! from [`ChaosPlan::seed`] with a splitmix64 stream, and time comes from a
//! frozen [`TestClock`] (scheduled deadline faults use an already-expired
//! budget, so they cancel at radius 0 deterministically). Thread
//! interleaving still varies run to run — which epoch a given query lands on
//! is scheduling-dependent — but every epoch's reference answer is
//! precomputed, so correctness checking is interleaving-independent.

use std::sync::Arc;

use avglocal_graph::{generators, CsrGraph, IdAssignment, NodeId};
use avglocal_runtime::examples::NaiveLargestId;
use avglocal_runtime::{BallExecution, BallExecutor, Knowledge};
use rayon::prelude::*;

use crate::batch::{BatchOutcome, Consistency, QueryOptions, QueryRequest};
use crate::clock::TestClock;
use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::service::RadiusQueryService;

/// The script of one chaos run. Cadences are "every k-th" (0 = never).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of every derived script.
    pub seed: u64,
    /// Nodes per generation; must be a multiple of 6 (the harness mixes
    /// cycles and 6-row grids of the same size).
    pub nodes: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Queries each reader issues.
    pub queries_per_reader: usize,
    /// Publish attempts the publisher makes while readers run.
    pub publish_attempts: usize,
    /// Every `torn_every`-th attempt publishes corrupt bytes (a simulated
    /// torn write) that must be rejected typed and rolled back.
    pub torn_every: usize,
    /// Every `panic_every`-th attempt builds its candidate under an armed
    /// failpoint panic storm, which must be caught and rolled back.
    pub panic_every: usize,
    /// Every `kill_every`-th attempt also injects a pool worker kill,
    /// exercising the worker supervisor while the service keeps serving.
    pub kill_every: usize,
    /// Every `deadline_every`-th query carries an already-expired budget and
    /// must fail with a typed deadline error at radius 0.
    pub deadline_every: usize,
    /// Every `latest_every`-th query runs in latest-generation mode (may
    /// surface typed staleness under heavy swapping).
    pub latest_every: usize,
    /// Every `batch_every`-th query turn issues a batched query instead of
    /// a single one. Every 3rd batch turn is a **deadline storm** (an
    /// already-expired shared budget: every entry must come back
    /// `Expired { radius: 0 }`), and every 2nd non-storm batch turn runs
    /// under latest consistency so swaps race whole batches.
    pub batch_every: usize,
    /// Nodes per batched query (scripted, duplicates allowed).
    pub batch_size: usize,
    /// Admission bound; small values exercise typed load shedding.
    pub max_in_flight: usize,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0x5eed_cafe,
            nodes: 36,
            readers: 4,
            queries_per_reader: 250,
            publish_attempts: 24,
            torn_every: 5,
            panic_every: 7,
            kill_every: 11,
            deadline_every: 13,
            latest_every: 3,
            batch_every: 6,
            batch_size: 12,
            max_in_flight: 8,
        }
    }
}

/// Outcome counts of a chaos run. `mismatches` and `unexpected_errors` must
/// be zero for a healthy service; every other count just describes how the
/// scripted faults landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// Queries that completed with an answer.
    pub completed: usize,
    /// Completed answers that did **not** match the sequential reference on
    /// their reported epoch — the invariant violation counter.
    pub mismatches: usize,
    /// Queries shed at admission (typed).
    pub shed: usize,
    /// Queries cancelled by their scripted expired deadline (typed).
    pub deadline_expired: usize,
    /// Latest-mode queries that exhausted retries under swapping (typed).
    pub stale: usize,
    /// Errors of any type the script did not provoke.
    pub unexpected_errors: usize,
    /// Publish attempts that succeeded (epochs beyond the initial one).
    pub published: usize,
    /// Publish attempts rejected for corrupt bytes (typed, rolled back).
    pub publish_rejected: usize,
    /// Publish attempts whose build panicked (caught, rolled back).
    pub publish_panicked: usize,
    /// Worker kills injected into the pool during the run.
    pub worker_kills: usize,
    /// Batched queries that were admitted and replied.
    pub batches: usize,
    /// Total entries across admitted batches.
    pub batch_entries: usize,
    /// Batch entries cancelled by a shared deadline (typed, partial reply).
    pub batch_expired: usize,
}

/// splitmix64: the harness's deterministic number stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The pool of candidate generations: same node count, alternating
/// topology, per-generation shuffled identifier tables — so serving a
/// mixed-generation answer (the torn-read failure mode) would be caught by
/// the reference comparison.
fn build_generations(plan: &ChaosPlan) -> Vec<CsrGraph> {
    assert!(
        plan.nodes >= 6 && plan.nodes.is_multiple_of(6),
        "ChaosPlan::nodes must be a multiple of 6"
    );
    let mut graphs = Vec::new();
    for g in 0..4u64 {
        let mut graph = if g % 2 == 0 {
            generators::cycle(plan.nodes).expect("cycle generator")
        } else {
            generators::grid(6, plan.nodes / 6).expect("grid generator")
        };
        IdAssignment::Shuffled { seed: plan.seed ^ (g.wrapping_mul(0x9e37_79b9)) }
            .apply(&mut graph)
            .expect("shuffled identifiers");
        graphs.push(graph.freeze());
    }
    graphs
}

/// What publish attempt `s` (1-based) is scripted to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attempt {
    Torn,
    Panicking,
    Publish(usize),
}

fn attempt_script(plan: &ChaosPlan) -> Vec<Attempt> {
    let mut next_graph = 1usize; // the initial generation used graph 0
    (1..=plan.publish_attempts)
        .map(|s| {
            if plan.torn_every > 0 && s % plan.torn_every == 0 {
                Attempt::Torn
            } else if plan.panic_every > 0 && s % plan.panic_every == 0 {
                Attempt::Panicking
            } else {
                let graph = next_graph;
                next_graph = (next_graph + 1) % 4;
                Attempt::Publish(graph)
            }
        })
        .collect()
}

/// The graph index each epoch serves: epoch 1 is graph 0, and every
/// successful scripted publish appends one entry. Derived purely from the
/// plan, so readers can check any epoch they observe.
fn epoch_graphs(script: &[Attempt]) -> Vec<usize> {
    let mut epochs = vec![0usize];
    for attempt in script {
        if let Attempt::Publish(graph) = attempt {
            epochs.push(*graph);
        }
    }
    epochs
}

/// Runs the scripted chaos and reports what happened.
///
/// The report's [`ChaosReport::mismatches`] and
/// [`ChaosReport::unexpected_errors`] are the invariants — a healthy service
/// holds both at zero whatever the interleaving; everything else is
/// descriptive. Uses [`NaiveLargestId`] as the workload (every generation
/// has a distinct identifier table, so cross-generation leakage in answers
/// is detectable).
#[must_use]
pub fn run_chaos(plan: &ChaosPlan) -> ChaosReport {
    let graphs = build_generations(plan);
    let references: Vec<BallExecution<bool>> = graphs
        .iter()
        .map(|csr| {
            BallExecutor::new()
                .run_frozen_sequential(csr, &NaiveLargestId, Knowledge::none())
                .expect("sequential reference")
        })
        .collect();
    let script = attempt_script(plan);
    let epoch_graph = epoch_graphs(&script);

    let service = RadiusQueryService::new(
        NaiveLargestId,
        Knowledge::none(),
        graphs[0].clone(),
        Arc::new(TestClock::new()),
        ServiceConfig { max_in_flight: plan.max_in_flight, ..ServiceConfig::default() },
    );

    let mut report = ChaosReport::default();
    std::thread::scope(|scope| {
        let service = &service;
        let graphs = &graphs;
        let references = &references;
        let epoch_graph = &epoch_graph;

        let readers: Vec<_> = (0..plan.readers)
            .map(|reader| {
                scope.spawn(move || {
                    let mut rng = plan.seed ^ (reader as u64).wrapping_mul(0xd134_2543_de82_ef95);
                    let mut local = ChaosReport::default();
                    for q in 1..=plan.queries_per_reader {
                        if plan.batch_every > 0 && q % plan.batch_every == 0 {
                            batch_turn(
                                plan,
                                service,
                                references,
                                epoch_graph,
                                &mut rng,
                                q,
                                &mut local,
                            );
                            continue;
                        }
                        let node = NodeId::new(splitmix64(&mut rng) as usize % plan.nodes);
                        let result = if plan.deadline_every > 0 && q % plan.deadline_every == 0 {
                            // Already-expired budget: a scripted deadline
                            // fault, cancelled deterministically at radius 0.
                            service.query_with_deadline(node, 0)
                        } else if plan.latest_every > 0 && q % plan.latest_every == 0 {
                            service.query_latest(node)
                        } else {
                            service.query(node)
                        };
                        match result {
                            Ok(reply) => {
                                local.completed += 1;
                                let reference =
                                    &references[epoch_graph[(reply.epoch - 1) as usize]];
                                if reply.output != *reference.output(node)
                                    || reply.radius != reference.radius(node)
                                {
                                    local.mismatches += 1;
                                }
                            }
                            Err(ServiceError::Overloaded { .. }) => local.shed += 1,
                            Err(ServiceError::DeadlineExceeded { radius: 0, .. }) => {
                                local.deadline_expired += 1;
                            }
                            Err(ServiceError::StaleGeneration { .. }) => local.stale += 1,
                            Err(_) => local.unexpected_errors += 1,
                        }
                    }
                    local
                })
            })
            .collect();

        // The publisher runs on this thread, interleaving swaps and fault
        // storms with the readers' queries.
        for (s, attempt) in script.iter().enumerate() {
            if plan.kill_every > 0 && (s + 1) % plan.kill_every == 0 {
                rayon::failpoints::kill_workers(1);
                report.worker_kills += 1;
            }
            match attempt {
                Attempt::Torn => {
                    let mut bytes = graphs[(s + 1) % 4].to_bytes();
                    let cut = bytes.len() / 2;
                    bytes.truncate(cut);
                    match service.publish_bytes(&bytes) {
                        Err(ServiceError::PublishRejected { .. }) => report.publish_rejected += 1,
                        _ => report.unexpected_errors += 1,
                    }
                }
                Attempt::Panicking => {
                    // Build the candidate under an armed failpoint storm: the
                    // parallel verification pass panics on its first chunk
                    // claim, the build unwinds, and the service rolls back.
                    rayon::failpoints::arm(rayon::failpoints::Plan::new().panic_every(1));
                    let candidate = &graphs[(s + 1) % 4];
                    let outcome = service.publish_with(|| {
                        let _: Vec<u64> =
                            (0..plan.nodes).into_par_iter().map(|i| i as u64 * 3).collect();
                        candidate.clone()
                    });
                    rayon::failpoints::disarm();
                    match outcome {
                        Err(ServiceError::PublishPanicked { .. }) => report.publish_panicked += 1,
                        _ => report.unexpected_errors += 1,
                    }
                }
                Attempt::Publish(graph) => match service.publish_csr(graphs[*graph].clone()) {
                    Ok(_) => report.published += 1,
                    Err(_) => report.unexpected_errors += 1,
                },
            }
        }

        for reader in readers {
            let local = reader.join().expect("chaos reader panicked");
            report.completed += local.completed;
            report.mismatches += local.mismatches;
            report.shed += local.shed;
            report.deadline_expired += local.deadline_expired;
            report.stale += local.stale;
            report.unexpected_errors += local.unexpected_errors;
            report.batches += local.batches;
            report.batch_entries += local.batch_entries;
            report.batch_expired += local.batch_expired;
        }
    });
    report
}

/// One scripted batch turn of a chaos reader: a batched query racing the
/// publisher's swap/fault storm, checked entry by entry.
///
/// Storm turns (every 3rd) ship an already-expired shared budget — with the
/// frozen test clock, every entry must come back `Expired { radius: 0 }`.
/// Every 2nd non-storm turn demands latest consistency, so a swap landing
/// mid-batch forces a whole-batch re-probe (or typed staleness). Completed
/// entries must always be bit-identical to the sequential reference on the
/// epoch the reply reports.
fn batch_turn(
    plan: &ChaosPlan,
    service: &RadiusQueryService<NaiveLargestId>,
    references: &[BallExecution<bool>],
    epoch_graph: &[usize],
    rng: &mut u64,
    q: usize,
    local: &mut ChaosReport,
) {
    let nodes: Vec<NodeId> = (0..plan.batch_size.max(1))
        .map(|_| NodeId::new(splitmix64(rng) as usize % plan.nodes))
        .collect();
    let turn = q / plan.batch_every;
    let storm = plan.deadline_every > 0 && turn.is_multiple_of(3);
    let mut options = QueryOptions::new();
    if storm {
        options = options.with_deadline(0);
    } else if plan.latest_every > 0 && turn.is_multiple_of(2) {
        options = options.with_consistency(Consistency::Latest { retry_limit: 3 });
    }
    match service.query_batch(&QueryRequest::nodes(nodes, options)) {
        Ok(reply) => {
            local.batches += 1;
            local.batch_entries += reply.len();
            local.batch_expired += reply.expired();
            if storm {
                let all_expired_at_zero = reply
                    .outcomes()
                    .iter()
                    .all(|o| matches!(o, BatchOutcome::Expired { radius: 0 }));
                if !all_expired_at_zero {
                    local.unexpected_errors += 1;
                }
            }
            let reference = &references[epoch_graph[(reply.epoch() - 1) as usize]];
            for (node, outcome) in reply.nodes().iter().zip(reply.outcomes()) {
                match outcome {
                    BatchOutcome::Completed { output, radius } => {
                        local.completed += 1;
                        if output != reference.output(*node) || *radius != reference.radius(*node) {
                            local.mismatches += 1;
                        }
                    }
                    BatchOutcome::Expired { .. } => {}
                    BatchOutcome::Failed(_) => local.unexpected_errors += 1,
                }
            }
        }
        Err(ServiceError::Overloaded { .. }) => local.shed += 1,
        Err(ServiceError::StaleGeneration { .. }) => local.stale += 1,
        Err(_) => local.unexpected_errors += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_functions_of_the_plan() {
        let plan = ChaosPlan::default();
        assert_eq!(attempt_script(&plan), attempt_script(&plan));
        assert_eq!(epoch_graphs(&attempt_script(&plan)), epoch_graphs(&attempt_script(&plan)));
        // Epoch 1 is always the initial generation (graph 0).
        assert_eq!(epoch_graphs(&attempt_script(&plan))[0], 0);
    }

    #[test]
    fn scripted_faults_land_where_scheduled() {
        let plan = ChaosPlan { publish_attempts: 14, ..ChaosPlan::default() };
        let script = attempt_script(&plan);
        assert_eq!(script[4], Attempt::Torn); // attempt 5
        assert_eq!(script[6], Attempt::Panicking); // attempt 7
        assert_eq!(script[9], Attempt::Torn); // attempt 10
        assert!(matches!(script[0], Attempt::Publish(_)));
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = 7;
        let mut b = 7;
        for _ in 0..10 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    #[test]
    fn small_chaos_run_holds_the_invariants() {
        let plan = ChaosPlan {
            readers: 2,
            queries_per_reader: 60,
            publish_attempts: 10,
            ..ChaosPlan::default()
        };
        let report = run_chaos(&plan);
        assert_eq!(report.mismatches, 0, "{report:?}");
        assert_eq!(report.unexpected_errors, 0, "{report:?}");
        assert!(report.completed > 0, "{report:?}");
        assert!(report.publish_rejected > 0, "{report:?}");
        assert!(report.publish_panicked > 0, "{report:?}");
        assert!(report.deadline_expired > 0, "{report:?}");
        assert!(report.batches > 0, "{report:?}");
        assert!(report.batch_expired > 0, "{report:?}");
    }
}
