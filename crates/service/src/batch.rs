//! Batched, sharded queries behind the unified [`QueryRequest`] API.
//!
//! A batch pins **one** generation, holds **one** admission slot for its
//! whole lifetime, and shards its node set across the persistent pool via
//! the session's dynamic per-shard scheduling
//! ([`avglocal_runtime::FrozenExecutor::run_nodes_with`]), reusing one
//! `GrowerScratch` per pool participant. One cooperative deadline budget
//! covers the entire batch: every probe polls the same shared cancel hook
//! once per ball-growth step, so when the budget expires mid-batch the
//! reply comes back *partial* — completed entries keep their bit-identical
//! answers, the rest are typed [`BatchOutcome::Expired`] — instead of the
//! whole batch failing.
//!
//! Single queries and batches take the same [`QueryOptions`]: a deadline
//! budget plus a [`Consistency`] mode (serve from the pinned generation, or
//! retry until the answer comes from a generation still current when the
//! probe completes).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use avglocal_graph::NodeId;
use avglocal_runtime::{BallAlgorithm, NodeBatchOptions, RuntimeError};

use crate::error::{Result, ServiceError};
use crate::service::{Generation, RadiusQueryService};

/// Which generation an answer must be consistent with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Serve from the generation pinned at admission; a swap landing
    /// mid-probe does not invalidate the answer (it still carries its
    /// generation's epoch). The default, and the cheapest.
    #[default]
    Pinned,
    /// Insist the answer come from a generation that is still current when
    /// the probe completes; retry with bounded exponential backoff when a
    /// swap invalidates the pinned generation mid-probe.
    Latest {
        /// How many re-probes to attempt before giving up with
        /// [`ServiceError::StaleGeneration`].
        retry_limit: u32,
    },
}

/// Options shared by single and batched queries.
///
/// The default asks for the configured default deadline on the pinned
/// generation — exactly what [`RadiusQueryService::query`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryOptions {
    /// Deadline budget in clock ticks; `None` uses the service's
    /// `default_deadline`.
    pub deadline: Option<u64>,
    /// Consistency demanded of the answer.
    pub consistency: Consistency,
}

impl QueryOptions {
    /// The default options: configured deadline, pinned consistency.
    #[must_use]
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Overrides the deadline budget.
    #[must_use]
    pub fn with_deadline(mut self, ticks: u64) -> Self {
        self.deadline = Some(ticks);
        self
    }

    /// Overrides the consistency mode.
    #[must_use]
    pub fn with_consistency(mut self, consistency: Consistency) -> Self {
        self.consistency = consistency;
        self
    }
}

/// The node population a batch asks about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSelection {
    /// Every node of the pinned generation — the population the paper's
    /// distributional measures are defined over.
    All,
    /// An explicit node list; reply slots answer positionally, duplicates
    /// and out-of-bounds entries included.
    Nodes(Vec<NodeId>),
}

/// A batched query: a node population plus the shared [`QueryOptions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// The nodes to probe.
    pub nodes: NodeSelection,
    /// Deadline and consistency, same type as single queries.
    pub options: QueryOptions,
}

impl QueryRequest {
    /// A whole-population request.
    #[must_use]
    pub fn all(options: QueryOptions) -> Self {
        QueryRequest { nodes: NodeSelection::All, options }
    }

    /// A request for an explicit node list.
    #[must_use]
    pub fn nodes(nodes: Vec<NodeId>, options: QueryOptions) -> Self {
        QueryRequest { nodes: NodeSelection::Nodes(nodes), options }
    }
}

/// Per-node outcome of a batched query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome<O> {
    /// The probe completed; bit-identical to a single query of the same
    /// node on the same generation.
    Completed {
        /// The algorithm's output for this node.
        output: O,
        /// The ball radius at which the algorithm decided.
        radius: usize,
    },
    /// The batch's shared deadline expired before this probe decided; the
    /// radius it had reached when cancelled is kept as progress evidence.
    Expired {
        /// Ball radius reached when the deadline cancelled the probe.
        radius: usize,
    },
    /// The probe failed for a non-deadline reason (out-of-bounds node,
    /// radius hard limit, ...).
    Failed(RuntimeError),
}

impl<O> BatchOutcome<O> {
    /// Whether this entry completed.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, BatchOutcome::Completed { .. })
    }
}

/// The typed — possibly partial — reply to a [`QueryRequest`].
///
/// The reply keeps its generation pinned (the `Arc` holds the epoch's
/// frozen session alive), so aggregate layers can fold the radius vector
/// against the exact snapshot that produced it even after later publishes.
#[derive(Debug)]
pub struct BatchReply<O> {
    generation: Arc<Generation>,
    budget: u64,
    nodes: Vec<NodeId>,
    outcomes: Vec<BatchOutcome<O>>,
    completed: usize,
    expired: usize,
}

impl<O> BatchReply<O> {
    /// Epoch of the generation every entry is consistent with.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.generation.epoch()
    }

    /// The pinned generation the batch ran on.
    #[must_use]
    pub fn generation(&self) -> &Arc<Generation> {
        &self.generation
    }

    /// The deadline budget the batch ran under, in clock ticks.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The resolved node list, positionally aligned with
    /// [`BatchReply::outcomes`].
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Per-node outcomes, in request order.
    #[must_use]
    pub fn outcomes(&self) -> &[BatchOutcome<O>] {
        &self.outcomes
    }

    /// Number of completed entries.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Number of entries cancelled by the shared deadline.
    #[must_use]
    pub fn expired(&self) -> usize {
        self.expired
    }

    /// Number of entries in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch had no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Whether every entry completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed == self.outcomes.len()
    }

    /// The full radius vector, for aggregate layers that need every entry.
    ///
    /// # Errors
    ///
    /// The first non-completed entry in node order, typed like the single
    /// query path: [`ServiceError::DeadlineExceeded`] for an expired entry,
    /// [`ServiceError::Probe`] for a failed one.
    pub fn radii(&self) -> Result<Vec<usize>> {
        let mut radii = Vec::with_capacity(self.outcomes.len());
        for outcome in &self.outcomes {
            match outcome {
                BatchOutcome::Completed { radius, .. } => radii.push(*radius),
                BatchOutcome::Expired { radius } => {
                    return Err(ServiceError::DeadlineExceeded {
                        budget: self.budget,
                        radius: *radius,
                    });
                }
                BatchOutcome::Failed(error) => return Err(ServiceError::Probe(error.clone())),
            }
        }
        Ok(radii)
    }
}

impl<A> RadiusQueryService<A>
where
    A: BallAlgorithm + Sync,
    A::Output: Send,
{
    /// Runs a batched query: one admission slot, one pinned generation, one
    /// shared deadline, node set sharded across the persistent pool.
    ///
    /// Completed entries are bit-identical to sequential single queries of
    /// the same nodes on the same generation — the shards are
    /// index-addressed, so scheduling never shows in the reply. A deadline
    /// expiring mid-batch yields a *partial* reply (typed per-entry
    /// outcomes), not an error; [`BatchReply::radii`] converts partiality
    /// back into the single-query error types when an aggregate needs every
    /// entry.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the batch is shed at admission —
    /// the whole batch costs exactly one slot —  and
    /// [`ServiceError::StaleGeneration`] when latest consistency exhausts
    /// its retries. Per-node failures are reported in the reply, not here.
    pub fn query_batch(&self, request: &QueryRequest) -> Result<BatchReply<A::Output>> {
        let _slot = self.admit()?;
        // ordering: monotone statistics counter; no ordering dependency.
        self.counters().batches.fetch_add(1, Ordering::Relaxed);
        let budget = self.budget_of(&request.options);
        self.with_consistency(request.options.consistency, |generation| {
            Ok(self.probe_batch(generation, &request.nodes, budget))
        })
    }

    /// Runs a batched query on a generation the **caller** already pinned,
    /// instead of the currently published one.
    ///
    /// This is the seam for two-phase protocols that must read a
    /// generation's graph before deciding what to probe — e.g. a sampling
    /// estimator that draws its node subset from the pinned snapshot's
    /// degree sequence and then probes exactly that subset. Routing both
    /// phases through one pinned `Arc<Generation>` closes the race where a
    /// publish lands between the draw and the probe: with plain
    /// [`RadiusQueryService::query_batch`] the probe would silently run
    /// against a different epoch than the one the sample was drawn from.
    ///
    /// Costs one admission slot and one shared deadline budget, exactly like
    /// `query_batch`; the `options.consistency` field is ignored because the
    /// caller's pin *is* the consistency decision.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when shed at admission. Per-node
    /// failures are reported in the reply, not here.
    pub fn query_batch_on(
        &self,
        generation: &Arc<Generation>,
        request: &QueryRequest,
    ) -> Result<BatchReply<A::Output>> {
        let _slot = self.admit()?;
        // ordering: monotone statistics counter; no ordering dependency.
        self.counters().batches.fetch_add(1, Ordering::Relaxed);
        let budget = self.budget_of(&request.options);
        Ok(self.probe_batch(generation, &request.nodes, budget))
    }

    /// One batch attempt on a pinned generation, under a shared budget.
    fn probe_batch(
        &self,
        generation: &Arc<Generation>,
        selection: &NodeSelection,
        budget: u64,
    ) -> BatchReply<A::Output> {
        let nodes: Vec<NodeId> = match selection {
            NodeSelection::All => (0..generation.node_count()).map(NodeId::new).collect(),
            NodeSelection::Nodes(nodes) => nodes.clone(),
        };
        let clock = self.clock();
        let start = clock.now();
        let cancel = move |_radius: usize| clock.now().saturating_sub(start) >= budget;
        let options = NodeBatchOptions::new()
            .with_scheduling(self.config().batch_scheduling)
            .with_shard(self.config().batch_shard)
            .with_cancel(&cancel);
        let results = generation.session().run_nodes_with(
            &nodes,
            self.algorithm(),
            self.knowledge(),
            &options,
        );

        let mut outcomes = Vec::with_capacity(results.len());
        let mut completed = 0usize;
        let mut expired = 0usize;
        for result in results {
            outcomes.push(match result {
                Ok((output, radius)) => {
                    completed += 1;
                    BatchOutcome::Completed { output, radius }
                }
                Err(RuntimeError::Cancelled { radius, .. }) => {
                    expired += 1;
                    BatchOutcome::Expired { radius }
                }
                Err(error) => BatchOutcome::Failed(error),
            });
        }
        // ordering: monotone statistics counters; no ordering dependency.
        self.counters().batch_entries.fetch_add(outcomes.len() as u64, Ordering::Relaxed);
        if expired > 0 {
            // ordering: monotone statistics counter; no ordering dependency.
            self.counters().deadline_expired.fetch_add(expired as u64, Ordering::Relaxed);
        }
        BatchReply {
            generation: Arc::clone(generation),
            budget,
            nodes,
            outcomes,
            completed,
            expired,
        }
    }
}
