//! A resilient, long-lived in-process radius-query service over frozen
//! snapshots — the service layer of the avglocal reproduction.
//!
//! The lower layers answer "what is node `v`'s decision radius?" as a
//! function call; this crate turns that into a **service** that keeps
//! answering correctly while the world misbehaves:
//!
//! * [`RadiusQueryService`] — epoch-published generations (readers pin, a
//!   mutex-guarded `Arc` swap publishes, failed candidates roll back),
//!   bounded admission with typed load shedding, per-request deadline
//!   budgets enforced by cooperative cancellation, and bounded
//!   retry-with-backoff for latest-consistency queries. Single queries and
//!   batches share one [`QueryOptions`]-driven implementation path;
//! * [`RadiusQueryService::query_batch`] — batched, sharded queries behind
//!   a unified [`QueryRequest`]: one pinned generation, one admission slot
//!   and one cooperative deadline per batch, the node set sharded across
//!   the persistent pool, and a typed partial [`BatchReply`] when the
//!   deadline expires mid-batch;
//! * [`ServiceConfig::builder`] — validated construction rejecting the
//!   degenerate tunables a struct literal silently accepts
//!   ([`InvalidConfig`]);
//! * [`SnapshotStore`] — crash-safe on-disk persistence of generations
//!   (write-temp + fsync + atomic rename) with deterministic recovery to
//!   the last durable generation after a torn write;
//! * [`Clock`] — the single seam through which time enters ([`TestClock`]
//!   for deterministic tests, [`WallClock`] for production);
//! * [`chaos`] — a deterministic chaos harness driving scripted
//!   interleavings of queries, swaps, corrupt publishes, failpoint panic
//!   storms, and worker kills, checking that every completed answer is
//!   bit-identical to the sequential reference on its pinned generation.
//!
//! Every failure the service reports is a typed [`ServiceError`]; nothing
//! on the request or publish path panics the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod chaos;
mod clock;
mod config;
mod error;
mod service;
mod store;

pub use batch::{BatchOutcome, BatchReply, Consistency, NodeSelection, QueryOptions, QueryRequest};
pub use clock::{Clock, TestClock, WallClock};
pub use config::{InvalidConfig, ServiceConfig, ServiceConfigBuilder};
pub use error::{Result, ServiceError};
pub use service::{Generation, QueryReply, RadiusQueryService, StatsSnapshot};
pub use store::{Recovery, SnapshotStore};
