//! Port numberings: how a node refers to its incident edges.
//!
//! In the LOCAL model a node does not know the global names of its
//! neighbours; it only sees its incident edges through locally numbered
//! *ports* `0..deg(v)`. The runtime uses [`PortNumbering`] to translate
//! between the simulator's global [`NodeId`]s and the ports visible to an
//! algorithm.

use std::collections::HashMap;

use crate::{Graph, NodeId};

/// The port numbering of a graph: for every node, an ordered list of its
/// neighbours.
///
/// Port `p` of node `v` leads to `neighbor(v, p)`. The numbering is derived
/// from the neighbour insertion order of the [`Graph`], which generators keep
/// deterministic, so experiments are reproducible.
///
/// Construction also precomputes, for every directed edge `(v, p)`, the port
/// on the far side that leads back to `v` ([`PortNumbering::reverse_port`]),
/// so message delivery does not pay a linear neighbour scan per message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortNumbering {
    ports: Vec<Vec<NodeId>>,
    /// `reverse[v][p]` is the port of `neighbor(v, p)` that leads back to `v`.
    reverse: Vec<Vec<usize>>,
}

impl PortNumbering {
    /// Builds the port numbering of `graph`, including the reverse map.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        let ports: Vec<Vec<NodeId>> = graph.nodes().map(|v| graph.neighbors(v).to_vec()).collect();
        // Index every directed edge once, then look each opposite port up in
        // O(1): overall O(n + m) instead of the O(sum of deg^2) that repeated
        // neighbour scans would cost.
        let mut port_of: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for (u, nbrs) in ports.iter().enumerate() {
            for (p, &v) in nbrs.iter().enumerate() {
                port_of.insert((NodeId::new(u), v), p);
            }
        }
        let reverse = ports
            .iter()
            .enumerate()
            .map(|(v, nbrs)| {
                nbrs.iter()
                    .map(|&u| {
                        *port_of
                            .get(&(u, NodeId::new(v)))
                            .expect("undirected graphs have symmetric port numberings")
                    })
                    .collect()
            })
            .collect();
        PortNumbering { ports, reverse }
    }

    /// Number of nodes covered by the numbering.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ports.len()
    }

    /// Degree of `node` (number of its ports).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.ports[node.index()].len()
    }

    /// The neighbour reached through port `port` of `node`, if that port
    /// exists.
    #[must_use]
    pub fn neighbor(&self, node: NodeId, port: usize) -> Option<NodeId> {
        self.ports.get(node.index()).and_then(|p| p.get(port)).copied()
    }

    /// The port of `node` that leads to `neighbor`, if they are adjacent.
    #[must_use]
    pub fn port_to(&self, node: NodeId, neighbor: NodeId) -> Option<usize> {
        self.ports.get(node.index()).and_then(|p| p.iter().position(|&v| v == neighbor))
    }

    /// The precomputed far-side port: for the edge leaving `node` through
    /// `port`, the port of the neighbour that leads back to `node`. `O(1)`.
    ///
    /// Equivalent to `self.port_to(self.neighbor(node, port)?, node)`.
    #[must_use]
    pub fn reverse_port(&self, node: NodeId, port: usize) -> Option<usize> {
        self.reverse.get(node.index()).and_then(|r| r.get(port)).copied()
    }

    /// All neighbours of `node` in port order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.ports[node.index()]
    }

    /// Checks the symmetry invariant: if port `p` of `u` leads to `v`, then
    /// some port of `v` leads back to `u`.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.ports
            .iter()
            .enumerate()
            .all(|(u, nbrs)| nbrs.iter().all(|v| self.port_to(*v, NodeId::new(u)).is_some()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ports_follow_neighbor_order() {
        let g = generators::cycle(5).unwrap();
        let p = PortNumbering::new(&g);
        assert_eq!(p.node_count(), 5);
        for v in g.nodes() {
            assert_eq!(p.degree(v), 2);
            assert_eq!(p.neighbors(v), g.neighbors(v));
            assert_eq!(p.neighbor(v, 0), Some(g.neighbors(v)[0]));
            assert_eq!(p.neighbor(v, 2), None);
        }
    }

    #[test]
    fn port_to_inverts_neighbor() {
        let g = generators::complete(4).unwrap();
        let p = PortNumbering::new(&g);
        for v in g.nodes() {
            for port in 0..p.degree(v) {
                let u = p.neighbor(v, port).unwrap();
                assert_eq!(p.neighbor(v, p.port_to(v, u).unwrap()), Some(u));
            }
        }
    }

    #[test]
    fn reverse_port_matches_port_to() {
        for g in [
            generators::cycle(7).unwrap(),
            generators::star(5).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::complete(5).unwrap(),
        ] {
            let p = PortNumbering::new(&g);
            for v in g.nodes() {
                for port in 0..p.degree(v) {
                    let u = p.neighbor(v, port).unwrap();
                    assert_eq!(p.reverse_port(v, port), p.port_to(u, v));
                }
                assert_eq!(p.reverse_port(v, p.degree(v)), None);
            }
        }
        assert_eq!(PortNumbering::new(&Graph::new()).reverse_port(NodeId::new(0), 0), None);
    }

    #[test]
    fn port_to_missing_neighbor_is_none() {
        let g = generators::path(4).unwrap();
        let p = PortNumbering::new(&g);
        assert_eq!(p.port_to(NodeId::new(0), NodeId::new(3)), None);
    }

    #[test]
    fn consistency_holds_for_generated_graphs() {
        for g in [
            generators::cycle(6).unwrap(),
            generators::star(5).unwrap(),
            generators::grid(3, 3).unwrap(),
            generators::petersen(),
        ] {
            assert!(PortNumbering::new(&g).is_consistent());
        }
    }

    #[test]
    fn empty_graph_port_numbering() {
        let g = Graph::new();
        let p = PortNumbering::new(&g);
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.neighbor(NodeId::new(0), 0), None);
    }
}
