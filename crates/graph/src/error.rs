//! Error types for graph construction and manipulation.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while building or mutating a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referred to a node that does not exist in the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// An edge `(u, u)` was requested; simple graphs have no self loops.
    SelfLoop {
        /// The node the self loop was requested on.
        node: NodeId,
    },
    /// The edge already exists; simple graphs have no parallel edges.
    DuplicateEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Two nodes were assigned the same identifier.
    DuplicateIdentifier {
        /// The duplicated identifier value.
        identifier: u64,
    },
    /// An identifier assignment did not cover every node exactly once.
    AssignmentLengthMismatch {
        /// Number of identifiers supplied.
        provided: usize,
        /// Number of nodes that must be covered.
        expected: usize,
    },
    /// A generator was asked for a graph it cannot produce (e.g. a cycle on
    /// fewer than three nodes).
    InvalidGeneratorParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A construction that requires a connected graph produced only
    /// disconnected instances (e.g. every `G(n, p)` draw fell apart).
    Disconnected {
        /// Human-readable description of the failed construction.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(f, "node {node} is out of bounds for a graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self loop requested on node {node}")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            GraphError::DuplicateIdentifier { identifier } => {
                write!(f, "identifier {identifier} assigned to more than one node")
            }
            GraphError::AssignmentLengthMismatch { provided, expected } => {
                write!(
                    f,
                    "identifier assignment provides {provided} identifiers but the graph has {expected} nodes"
                )
            }
            GraphError::InvalidGeneratorParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::Disconnected { reason } => {
                write!(f, "graph is disconnected: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

/// Convenience alias for results whose error type is [`GraphError`].
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds { node: NodeId::new(9), node_count: 4 };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('4'));

        let e = GraphError::SelfLoop { node: NodeId::new(2) };
        assert!(e.to_string().contains("self loop"));

        let e = GraphError::DuplicateEdge { u: NodeId::new(1), v: NodeId::new(2) };
        assert!(e.to_string().contains("already exists"));

        let e = GraphError::DuplicateIdentifier { identifier: 7 };
        assert!(e.to_string().contains('7'));

        let e = GraphError::AssignmentLengthMismatch { provided: 3, expected: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));

        let e = GraphError::InvalidGeneratorParameter { reason: "cycle needs n >= 3".into() };
        assert!(e.to_string().contains("cycle needs"));

        let e = GraphError::Disconnected { reason: "every G(8, 0) draw fell apart".into() };
        assert!(e.to_string().contains("disconnected"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
