//! Error types for graph construction and manipulation.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while building or mutating a [`crate::Graph`].
///
/// The enum is `#[non_exhaustive]`: new variants may be added in later
/// versions as more trust boundaries gain typed validation (most recently
/// [`GraphError::CorruptSnapshot`] and [`GraphError::MalformedLine`]), so
/// downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referred to a node that does not exist in the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// An edge `(u, u)` was requested; simple graphs have no self loops.
    SelfLoop {
        /// The node the self loop was requested on.
        node: NodeId,
    },
    /// The edge already exists; simple graphs have no parallel edges.
    DuplicateEdge {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// Two nodes were assigned the same identifier.
    DuplicateIdentifier {
        /// The duplicated identifier value.
        identifier: u64,
    },
    /// An identifier assignment did not cover every node exactly once.
    AssignmentLengthMismatch {
        /// Number of identifiers supplied.
        provided: usize,
        /// Number of nodes that must be covered.
        expected: usize,
    },
    /// A generator was asked for a graph it cannot produce (e.g. a cycle on
    /// fewer than three nodes).
    InvalidGeneratorParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A construction that requires a connected graph produced only
    /// disconnected instances (e.g. every `G(n, p)` draw fell apart).
    Disconnected {
        /// Human-readable description of the failed construction.
        reason: String,
    },
    /// A binary snapshot (see [`crate::snapshot`]) failed validation.
    ///
    /// Snapshot bytes are treated as untrusted: every structural invariant
    /// (header magic and version, payload checksum, monotone offsets,
    /// endpoint bounds, adjacency symmetry, component-label consistency) is
    /// checked during decode, and any violation is reported through this
    /// variant instead of a panic.
    CorruptSnapshot {
        /// Byte offset of the region in which validation failed (best
        /// effort; `0` when the failure is not tied to one region, such as a
        /// checksum mismatch).
        offset: usize,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Reading or durably writing a snapshot *file* failed at the I/O layer
    /// (see [`crate::CsrGraph::write_to_path`] /
    /// [`crate::CsrGraph::read_from_path`]).
    ///
    /// Distinct from [`GraphError::CorruptSnapshot`]: this variant means the
    /// bytes never made it to or from disk (missing file, permission error,
    /// failed fsync or rename), while `CorruptSnapshot` means bytes were read
    /// but failed validation.
    SnapshotIo {
        /// The file the operation was addressed at.
        path: String,
        /// Human-readable description of the underlying I/O failure.
        reason: String,
    },
    /// A line of an edge-list document (see [`crate::io::from_edge_list`])
    /// could not be parsed.
    ///
    /// Carries the 1-based line number so callers can point at the offending
    /// input line; errors that only surface once the whole document is
    /// assembled (duplicate identifiers, unknown edge endpoints) are still
    /// reported through their own variants without a line number.
    MalformedLine {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what is wrong with the line.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(f, "node {node} is out of bounds for a graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self loop requested on node {node}")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            GraphError::DuplicateIdentifier { identifier } => {
                write!(f, "identifier {identifier} assigned to more than one node")
            }
            GraphError::AssignmentLengthMismatch { provided, expected } => {
                write!(
                    f,
                    "identifier assignment provides {provided} identifiers but the graph has {expected} nodes"
                )
            }
            GraphError::InvalidGeneratorParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::Disconnected { reason } => {
                write!(f, "graph is disconnected: {reason}")
            }
            GraphError::CorruptSnapshot { offset, reason } => {
                write!(f, "corrupt snapshot at byte offset {offset}: {reason}")
            }
            GraphError::SnapshotIo { path, reason } => {
                write!(f, "snapshot i/o on {path}: {reason}")
            }
            GraphError::MalformedLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

/// Convenience alias for results whose error type is [`GraphError`].
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds { node: NodeId::new(9), node_count: 4 };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('4'));

        let e = GraphError::SelfLoop { node: NodeId::new(2) };
        assert!(e.to_string().contains("self loop"));

        let e = GraphError::DuplicateEdge { u: NodeId::new(1), v: NodeId::new(2) };
        assert!(e.to_string().contains("already exists"));

        let e = GraphError::DuplicateIdentifier { identifier: 7 };
        assert!(e.to_string().contains('7'));

        let e = GraphError::AssignmentLengthMismatch { provided: 3, expected: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));

        let e = GraphError::InvalidGeneratorParameter { reason: "cycle needs n >= 3".into() };
        assert!(e.to_string().contains("cycle needs"));

        let e = GraphError::Disconnected { reason: "every G(8, 0) draw fell apart".into() };
        assert!(e.to_string().contains("disconnected"));

        let e = GraphError::CorruptSnapshot { offset: 24, reason: "offsets not monotone".into() };
        assert!(e.to_string().contains("24"));
        assert!(e.to_string().contains("monotone"));

        let e = GraphError::SnapshotIo { path: "gen-7.snap".into(), reason: "not found".into() };
        assert!(e.to_string().contains("gen-7.snap"));
        assert!(e.to_string().contains("not found"));

        let e = GraphError::MalformedLine { line: 3, reason: "unknown directive 'frob'".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("frob"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
