//! Incremental ball growth: the engine behind the radius measurements.
//!
//! The paper's measurements probe every node at every radius `0..r(v)`, so
//! re-extracting the full ball from scratch at each probe costs
//! `Θ(Σ_v r(v)²)` — quadratic per node. [`BallGrower`] keeps the BFS frontier
//! between radius `r` and `r + 1` instead: growing the radius only touches
//! the edges of the newest ring, so probing a node up to its decision radius
//! costs `Θ(ball(v))` in total.
//!
//! The grower works on a [`CsrGraph`] snapshot and owns dense, epoch-stamped
//! scratch buffers. [`BallGrower::reset`] re-centres it in `O(1)` (one epoch
//! bump, no clearing), so one grower can serve every node of an execution
//! without allocating in the steady state.
//!
//! The grower always *discovers* one ring beyond the published radius: ring
//! `r + 1` is exactly what the saturation test at radius `r` needs ("does any
//! boundary node have a neighbour outside the ball?"), and becomes the
//! published ring on the next [`BallGrower::grow`]. Every edge of the final
//! ball is therefore scanned exactly once.

use std::collections::HashMap;

use crate::ball::Ball;
use crate::csr::CsrGraph;
use crate::{Identifier, NodeId};

/// The owned scratch buffers of a [`BallGrower`], detached from any CSR
/// borrow.
///
/// A grower borrows its [`CsrGraph`], so a long-lived session that owns its
/// snapshot cannot also store a grower (that would be self-referential).
/// Instead it stores a `GrowerScratch`, reattaches it with
/// [`BallGrower::with_scratch`] for each probe, and takes it back with
/// [`BallGrower::into_scratch`] — keeping the zero-steady-state-allocation
/// property across probes without holding the borrow open.
#[derive(Debug, Clone, Default)]
pub struct GrowerScratch {
    members: Vec<u32>,
    dists: Vec<u32>,
    ids: Vec<Identifier>,
    ring_ends: Vec<u32>,
    stamp: Vec<u32>,
    pos: Vec<u32>,
    epoch: u32,
}

/// Grows the ball around a centre node one radius at a time.
///
/// Equivalent, radius for radius, to [`crate::extract_ball`] — the property
/// tests compare the two ball for ball — but incremental: `grow` only expands
/// the frontier, and `reset` recycles all scratch buffers.
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, BallGrower, NodeId};
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let cycle = generators::cycle(8)?;
/// let csr = cycle.freeze();
/// let mut grower = BallGrower::new(&csr, NodeId::new(0));
/// assert_eq!(grower.node_count(), 1); // radius 0: just the centre
/// grower.grow();
/// grower.grow();
/// assert_eq!(grower.radius(), 2);
/// assert_eq!(grower.node_count(), 5); // centre + 2 on each side
/// assert!(!grower.is_saturated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BallGrower<'g> {
    csr: &'g CsrGraph,
    center: u32,
    radius: usize,
    /// Ball members in BFS (distance, discovery) order, as CSR node indices.
    /// Includes one ring of lookahead past the published radius.
    members: Vec<u32>,
    /// Distance from the centre, parallel to `members`.
    dists: Vec<u32>,
    /// Identifier of each member, parallel to `members`.
    ids: Vec<Identifier>,
    /// `ring_ends[d]` = exclusive end of ring `d` in `members`. Covers every
    /// ring up to and including the lookahead ring `radius + 1`.
    ring_ends: Vec<u32>,
    /// `stamp[v] == epoch` marks `v` as discovered in the current ball.
    stamp: Vec<u32>,
    /// Position of `v` in `members`, valid only when `stamp[v] == epoch`.
    pos: Vec<u32>,
    epoch: u32,
    /// Members `0..published` are inside the published (radius-`r`) ball; the
    /// rest are lookahead.
    published: usize,
    /// Running maximum identifier over the published members.
    max_id: Identifier,
    saturated: bool,
}

impl<'g> BallGrower<'g> {
    /// Creates a grower over `csr`, centred on `center` at radius 0.
    ///
    /// # Panics
    ///
    /// Panics if `center` is not a node of the snapshot.
    #[must_use]
    pub fn new(csr: &'g CsrGraph, center: NodeId) -> Self {
        Self::with_scratch(csr, center, GrowerScratch::default())
    }

    /// Creates a grower over `csr` reusing the buffers of a detached
    /// [`GrowerScratch`] (see [`BallGrower::into_scratch`]). Once the scratch
    /// has warmed up to the size of the snapshot this allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `center` is not a node of the snapshot.
    #[must_use]
    pub fn with_scratch(csr: &'g CsrGraph, center: NodeId, scratch: GrowerScratch) -> Self {
        let n = csr.node_count();
        let GrowerScratch { members, dists, ids, ring_ends, mut stamp, mut pos, epoch } = scratch;
        // Stale entries hold past epochs, which are strictly smaller than the
        // epoch `reset` bumps to, so resizing preserves correctness.
        stamp.resize(n, 0);
        pos.resize(n, 0);
        let mut grower = BallGrower {
            csr,
            center: 0,
            radius: 0,
            members,
            dists,
            ids,
            ring_ends,
            stamp,
            pos,
            epoch,
            published: 0,
            max_id: Identifier::new(0),
            saturated: false,
        };
        grower.reset(center);
        grower
    }

    /// Detaches the scratch buffers so a session owning the [`CsrGraph`] can
    /// keep them across probes; reattach with [`BallGrower::with_scratch`].
    #[must_use]
    pub fn into_scratch(self) -> GrowerScratch {
        GrowerScratch {
            members: self.members,
            dists: self.dists,
            ids: self.ids,
            ring_ends: self.ring_ends,
            stamp: self.stamp,
            pos: self.pos,
            epoch: self.epoch,
        }
    }

    /// Re-centres the grower on `center` at radius 0, reusing every scratch
    /// buffer. `O(1)` plus the centre's degree; no allocation once the
    /// buffers have warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `center` is not a node of the snapshot.
    pub fn reset(&mut self, center: NodeId) {
        assert!(center.index() < self.csr.node_count(), "ball centre must be in the graph");
        if self.epoch == u32::MAX {
            // One stamp clear every 2^32 - 1 resets keeps the mark test a
            // single comparison everywhere else.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.center = center.index() as u32;
        self.radius = 0;
        self.members.clear();
        self.dists.clear();
        self.ids.clear();
        self.ring_ends.clear();

        self.stamp[self.center as usize] = self.epoch;
        self.pos[self.center as usize] = 0;
        self.members.push(self.center);
        self.dists.push(0);
        self.ids.push(self.csr.identifier(self.center));
        self.ring_ends.push(1);
        self.published = 1;
        self.max_id = self.csr.identifier(self.center);

        self.discover_next_ring();
        self.saturated = self.members.len() == self.published;
    }

    /// Grows the published radius by one, expanding only the frontier.
    ///
    /// Once the ball is saturated this is a no-op apart from the radius
    /// bookkeeping (larger radii reveal nothing new).
    pub fn grow(&mut self) {
        self.radius += 1;
        if self.saturated {
            // Record an empty ring so per-radius snapshots stay well formed.
            self.ring_ends.push(self.members.len() as u32);
            return;
        }
        let newly_published = self.ring_ends[self.radius] as usize;
        for i in self.published..newly_published {
            self.max_id = self.max_id.max(self.ids[i]);
        }
        self.published = newly_published;
        self.discover_next_ring();
        self.saturated = self.members.len() == self.published;
    }

    /// Discovers the ring after the last complete one by scanning exactly the
    /// edges incident to that last ring.
    fn discover_next_ring(&mut self) {
        let ring_count = self.ring_ends.len();
        let scan_start = if ring_count >= 2 { self.ring_ends[ring_count - 2] as usize } else { 0 };
        let scan_end = self.ring_ends[ring_count - 1] as usize;
        // The scanned ring is never empty: `reset` scans the centre and `grow`
        // only discovers while unsaturated (lookahead ring non-empty).
        let next_dist = self.dists[scan_start] + 1;
        for i in scan_start..scan_end {
            let u = self.members[i];
            for &v in self.csr.neighbors(u) {
                if self.stamp[v as usize] != self.epoch {
                    self.stamp[v as usize] = self.epoch;
                    self.pos[v as usize] = self.members.len() as u32;
                    self.members.push(v);
                    self.dists.push(next_dist);
                    self.ids.push(self.csr.identifier(v));
                }
            }
        }
        self.ring_ends.push(self.members.len() as u32);
    }

    /// The centre node.
    #[must_use]
    pub fn center(&self) -> NodeId {
        NodeId::new(self.center as usize)
    }

    /// The published radius.
    #[must_use]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of nodes in the published ball (the centre counts).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.published
    }

    /// Returns `true` when the published ball covers the centre's entire
    /// connected component.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Identifier of the centre.
    #[must_use]
    pub fn center_identifier(&self) -> Identifier {
        self.ids[0]
    }

    /// The centre's degree in the host graph (which equals its degree inside
    /// the ball as soon as the radius is at least 1).
    #[must_use]
    pub fn center_host_degree(&self) -> usize {
        self.csr.degree(self.center)
    }

    /// Largest identifier in the published ball, maintained incrementally.
    #[must_use]
    pub fn max_identifier(&self) -> Identifier {
        self.max_id
    }

    /// Identifiers of the published members, in BFS (distance, discovery)
    /// order; the centre comes first.
    #[must_use]
    pub fn identifiers(&self) -> &[Identifier] {
        &self.ids[..self.published]
    }

    /// Host node ids of the published members, in BFS order.
    #[must_use]
    pub fn members(&self) -> &[u32] {
        &self.members[..self.published]
    }

    /// Distance from the centre of the member at BFS position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the published ball.
    #[must_use]
    pub fn distance_of_index(&self, index: usize) -> usize {
        assert!(index < self.published, "index outside the published ball");
        self.dists[index] as usize
    }

    /// Identifiers of the members at exactly distance `d`, in discovery
    /// order. Empty for distances beyond the published radius.
    #[must_use]
    pub fn ring_identifiers(&self, d: usize) -> &[Identifier] {
        if d > self.radius {
            return &[];
        }
        let start = if d == 0 { 0 } else { self.ring_ends[d - 1] as usize };
        let end = self.ring_ends[d] as usize;
        &self.ids[start..end.min(self.published)]
    }

    /// Returns `true` when host node `v` lies inside the published ball.
    #[must_use]
    pub fn contains_host(&self, v: NodeId) -> bool {
        let v = v.index();
        v < self.stamp.len()
            && self.stamp[v] == self.epoch
            && (self.pos[v] as usize) < self.published
    }

    /// Materialises the published ball as a standalone [`Ball`], identical
    /// (including field-for-field equality) to
    /// [`crate::extract_ball`]`(graph, center, radius)`.
    ///
    /// This is `O(ball)` and allocates; the executors only call it when an
    /// algorithm actually asks for the induced subgraph.
    #[must_use]
    pub fn snapshot_ball(&self) -> Ball {
        let members: Vec<NodeId> =
            self.members().iter().map(|&v| NodeId::new(v as usize)).collect();
        let distances: Vec<usize> =
            self.dists[..self.published].iter().map(|&d| d as usize).collect();
        let index_of: HashMap<NodeId, usize> =
            members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let identifiers = self.identifiers().to_vec();
        let mut edges = Vec::new();
        for (i, &u) in self.members().iter().enumerate() {
            for &v in self.csr.neighbors(u) {
                if self.stamp[v as usize] == self.epoch {
                    let j = self.pos[v as usize] as usize;
                    if j < self.published && i < j {
                        edges.push((i, j));
                    }
                }
            }
        }
        Ball::from_parts(
            self.center(),
            self.radius,
            members,
            distances,
            index_of,
            identifiers,
            edges,
            self.saturated,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball::extract_ball;
    use crate::{generators, Graph, IdAssignment};

    fn assert_matches_extract(g: &Graph, center: usize, max_radius: usize) {
        let csr = g.freeze();
        let mut grower = BallGrower::new(&csr, NodeId::new(center));
        for r in 0..=max_radius {
            if r > 0 {
                grower.grow();
            }
            let expected = extract_ball(g, NodeId::new(center), r);
            assert_eq!(
                grower.snapshot_ball(),
                expected,
                "ball mismatch at center {center}, radius {r}"
            );
            assert_eq!(grower.node_count(), expected.node_count());
            assert_eq!(grower.is_saturated(), expected.is_saturated());
            assert_eq!(grower.max_identifier(), expected.max_identifier());
        }
    }

    #[test]
    fn matches_extract_ball_on_cycles_paths_grids() {
        for g in [
            generators::cycle(11).unwrap(),
            generators::path(7).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::star(6).unwrap(),
            generators::complete(5).unwrap(),
        ] {
            for center in 0..g.node_count() {
                assert_matches_extract(&g, center, g.node_count() / 2 + 2);
            }
        }
    }

    #[test]
    fn matches_extract_ball_with_shuffled_identifiers() {
        let mut g = generators::cycle(16).unwrap();
        IdAssignment::Shuffled { seed: 3 }.apply(&mut g).unwrap();
        assert_matches_extract(&g, 5, 10);
    }

    #[test]
    fn reset_reuses_buffers_across_centres() {
        let g = generators::cycle(12).unwrap();
        let csr = g.freeze();
        let mut grower = BallGrower::new(&csr, NodeId::new(0));
        for center in 0..12 {
            grower.reset(NodeId::new(center));
            while !grower.is_saturated() {
                grower.grow();
            }
            assert_eq!(grower.node_count(), 12);
            assert_eq!(grower.radius(), 6);
            assert_eq!(grower.center(), NodeId::new(center));
        }
    }

    #[test]
    fn saturated_growth_is_a_stable_no_op() {
        let g = generators::cycle(7).unwrap();
        let csr = g.freeze();
        let mut grower = BallGrower::new(&csr, NodeId::new(3));
        for _ in 0..10 {
            grower.grow();
        }
        assert_eq!(grower.radius(), 10);
        assert_eq!(grower.node_count(), 7);
        assert!(grower.is_saturated());
        assert_eq!(grower.snapshot_ball(), extract_ball(&g, NodeId::new(3), 10));
    }

    #[test]
    fn ring_identifiers_partition_the_ball() {
        let g = generators::grid(4, 4).unwrap();
        let csr = g.freeze();
        let mut grower = BallGrower::new(&csr, NodeId::new(5));
        grower.grow();
        grower.grow();
        let total: usize = (0..=2).map(|d| grower.ring_identifiers(d).len()).sum();
        assert_eq!(total, grower.node_count());
        assert_eq!(grower.ring_identifiers(0), &[g.identifier(NodeId::new(5))]);
        assert!(grower.ring_identifiers(7).is_empty());
    }

    #[test]
    fn contains_host_tracks_membership() {
        let g = generators::path(6).unwrap();
        let csr = g.freeze();
        let mut grower = BallGrower::new(&csr, NodeId::new(2));
        grower.grow();
        assert!(grower.contains_host(NodeId::new(1)));
        assert!(grower.contains_host(NodeId::new(3)));
        assert!(!grower.contains_host(NodeId::new(4)));
        assert!(!grower.contains_host(NodeId::new(99)));
    }

    #[test]
    fn scratch_round_trip_matches_fresh_grower() {
        // Detach/reattach across two different snapshots (different sizes,
        // different identifiers) and compare against fresh growers.
        let mut small = generators::cycle(8).unwrap();
        IdAssignment::Shuffled { seed: 5 }.apply(&mut small).unwrap();
        let big = generators::grid(4, 5).unwrap();
        let small_csr = small.freeze();
        let big_csr = big.freeze();

        let mut scratch = GrowerScratch::default();
        for (csr, center) in [(&small_csr, 3), (&big_csr, 11), (&small_csr, 0)] {
            let mut reused = BallGrower::with_scratch(csr, NodeId::new(center), scratch);
            let mut fresh = BallGrower::new(csr, NodeId::new(center));
            for _ in 0..4 {
                assert_eq!(reused.snapshot_ball(), fresh.snapshot_ball());
                assert_eq!(reused.max_identifier(), fresh.max_identifier());
                assert_eq!(reused.is_saturated(), fresh.is_saturated());
                reused.grow();
                fresh.grow();
            }
            scratch = reused.into_scratch();
        }
    }

    #[test]
    #[should_panic(expected = "ball centre must be in the graph")]
    fn rejects_missing_center() {
        let g = generators::cycle(3).unwrap();
        let csr = g.freeze();
        let _ = BallGrower::new(&csr, NodeId::new(5));
    }
}
