//! Plain-text graph interchange: DOT export and an edge-list format.
//!
//! Experiments occasionally need to hand an instance (topology + identifier
//! assignment) to external tooling, or to reload a previously saved worst-case
//! instance. Two formats are supported:
//!
//! * **DOT** (Graphviz) export, for visualising small instances;
//! * a line-oriented **edge-list** format that round-trips through
//!   [`to_edge_list`] / [`from_edge_list`]: one `node <id>` line per node (in
//!   node order, so identifier assignments are preserved) followed by one
//!   `edge <id> <id>` line per undirected edge.

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};

/// Renders the graph in Graphviz DOT syntax (undirected, identifiers as
/// labels).
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, io};
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let g = generators::cycle(3)?;
/// let dot = io::to_dot(&g, "triangle");
/// assert!(dot.starts_with("graph triangle {"));
/// assert!(dot.contains("v0 -- v1"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("graph {name} {{\n"));
    for v in graph.nodes() {
        out.push_str(&format!("    v{} [label=\"{}\"];\n", v.index(), graph.identifier(v)));
    }
    for (u, v) in graph.edges() {
        out.push_str(&format!("    v{} -- v{};\n", u.index(), v.index()));
    }
    out.push_str("}\n");
    out
}

/// Serialises the graph in the edge-list format described in the module
/// documentation.
#[must_use]
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    for v in graph.nodes() {
        out.push_str(&format!("node {}\n", graph.identifier(v).value()));
    }
    for (u, v) in graph.edges() {
        out.push_str(&format!(
            "edge {} {}\n",
            graph.identifier(u).value(),
            graph.identifier(v).value()
        ));
    }
    out
}

/// Parses a graph from the edge-list format produced by [`to_edge_list`].
///
/// Blank lines and lines starting with `#` are ignored.
///
/// # Errors
///
/// The input is treated as untrusted text: every parse failure is reported
/// as a typed [`GraphError::MalformedLine`] carrying the 1-based line number
/// (unknown directives, missing or non-numeric identifiers, trailing
/// tokens). Builder errors that only surface once the whole document is
/// assembled (duplicate identifiers, duplicate edges, self loops, edges
/// naming unknown nodes) are propagated unchanged. This function never
/// panics, whatever the input.
pub fn from_edge_list(text: &str) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    for (line_no, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(directive) = parts.next() else {
            continue; // unreachable: the line is non-empty, but never panic on input
        };
        let parse = |token: Option<&str>| -> Result<u64> {
            let token = token.ok_or_else(|| GraphError::MalformedLine {
                line: line_no + 1,
                reason: "missing identifier".to_string(),
            })?;
            token.parse::<u64>().map_err(|_| GraphError::MalformedLine {
                line: line_no + 1,
                reason: format!("identifier '{token}' is not an unsigned integer"),
            })
        };
        match directive {
            "node" => {
                let id = parse(parts.next())?;
                builder = builder.node(id);
            }
            "edge" => {
                let a = parse(parts.next())?;
                let b = parse(parts.next())?;
                builder = builder.edge(a, b);
            }
            other => {
                return Err(GraphError::MalformedLine {
                    line: line_no + 1,
                    reason: format!("unknown directive '{other}'"),
                });
            }
        }
        if parts.next().is_some() {
            return Err(GraphError::MalformedLine {
                line: line_no + 1,
                reason: "trailing tokens after the directive arguments".to_string(),
            });
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, IdAssignment};

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let g = generators::cycle(4).unwrap();
        let dot = to_dot(&g, "ring");
        assert!(dot.starts_with("graph ring {"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert_eq!(dot.matches("label=").count(), 4);
    }

    #[test]
    fn edge_list_round_trip_preserves_structure_and_identifiers() {
        let mut g = generators::cycle(9).unwrap();
        IdAssignment::Shuffled { seed: 5 }.apply(&mut g).unwrap();
        let text = to_edge_list(&g);
        let restored = from_edge_list(&text).unwrap();
        assert_eq!(restored.node_count(), g.node_count());
        assert_eq!(restored.edge_count(), g.edge_count());
        // Identifier sequence in node order is preserved.
        let original: Vec<u64> = g.identifiers().map(|i| i.value()).collect();
        let roundtrip: Vec<u64> = restored.identifiers().map(|i| i.value()).collect();
        assert_eq!(original, roundtrip);
        // Adjacency is preserved (same edges between the same identifiers).
        for (u, v) in g.edges() {
            let a = restored.node_by_identifier(g.identifier(u)).unwrap();
            let b = restored.node_by_identifier(g.identifier(v)).unwrap();
            assert!(restored.contains_edge(a, b));
        }
    }

    #[test]
    fn round_trip_works_for_other_families() {
        for g in [generators::petersen(), generators::grid(3, 3).unwrap()] {
            let restored = from_edge_list(&to_edge_list(&g)).unwrap();
            assert_eq!(restored.node_count(), g.node_count());
            assert_eq!(restored.edge_count(), g.edge_count());
        }
    }

    #[test]
    fn parser_ignores_comments_and_blank_lines() {
        let text = "# a comment\n\nnode 1\nnode 2\n\nedge 1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_edge_list("frob 1").is_err());
        assert!(from_edge_list("node").is_err());
        assert!(from_edge_list("node abc").is_err());
        assert!(from_edge_list("edge 1").is_err());
        assert!(from_edge_list("node 1\nnode 1").is_err()); // duplicate identifier
        assert!(from_edge_list("node 1\nedge 1 1").is_err()); // self loop
        assert!(from_edge_list("node 1\nnode 2\nedge 1 3").is_err()); // unknown node
        assert!(from_edge_list("node 1 2").is_err()); // trailing tokens
    }

    #[test]
    fn parse_errors_carry_the_offending_line_number() {
        let text = "node 1\nnode 2\nfrob 3\n";
        match from_edge_list(text) {
            Err(GraphError::MalformedLine { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("frob"));
            }
            other => panic!("expected MalformedLine, got {other:?}"),
        }
        // Blank and comment lines still count toward the line number.
        let text = "# header\n\nnode 1\nnode nope\n";
        match from_edge_list(text) {
            Err(GraphError::MalformedLine { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected MalformedLine, got {other:?}"),
        }
        // Overflowing identifiers are parse errors, not panics.
        match from_edge_list("node 99999999999999999999999999") {
            Err(GraphError::MalformedLine { line: 1, .. }) => {}
            other => panic!("expected MalformedLine, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_the_empty_graph() {
        let g = from_edge_list("").unwrap();
        assert!(g.is_empty());
        assert_eq!(to_edge_list(&g), "");
    }
}
