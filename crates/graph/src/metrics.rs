//! Structural metrics of graphs, used in experiment reports.

use crate::traversal;
use crate::Graph;

/// A summary of the structural properties of a graph.
///
/// Produced by [`summarize`]; used by the experiment harness to annotate
/// result tables with the topology they were measured on.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum degree, `None` when the graph is empty.
    pub min_degree: Option<usize>,
    /// Maximum degree, `None` when the graph is empty.
    pub max_degree: Option<usize>,
    /// Average degree (`2m / n`), 0.0 when the graph is empty.
    pub average_degree: f64,
    /// Whether the graph is connected.
    pub connected: bool,
    /// Diameter, `None` when disconnected or empty.
    pub diameter: Option<usize>,
    /// Whether the graph is bipartite.
    pub bipartite: bool,
}

/// Computes a [`GraphSummary`] for `graph`.
///
/// Diameter computation is quadratic in the number of nodes; for very large
/// graphs prefer computing only the fields you need.
#[must_use]
pub fn summarize(graph: &Graph) -> GraphSummary {
    let nodes = graph.node_count();
    let edges = graph.edge_count();
    GraphSummary {
        nodes,
        edges,
        min_degree: graph.min_degree(),
        max_degree: graph.max_degree(),
        average_degree: if nodes == 0 { 0.0 } else { 2.0 * edges as f64 / nodes as f64 },
        connected: traversal::is_connected(graph),
        diameter: traversal::diameter(graph),
        bipartite: traversal::is_bipartite(graph),
    }
}

/// Histogram of node degrees: `result[d]` is the number of nodes of degree
/// `d`. The vector is long enough to cover the maximum degree.
#[must_use]
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let max = graph.max_degree().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    if graph.is_empty() {
        hist.clear();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_summary() {
        let g = generators::cycle(8).unwrap();
        let s = summarize(&g);
        assert_eq!(s.nodes, 8);
        assert_eq!(s.edges, 8);
        assert_eq!(s.min_degree, Some(2));
        assert_eq!(s.max_degree, Some(2));
        assert!((s.average_degree - 2.0).abs() < 1e-12);
        assert!(s.connected);
        assert_eq!(s.diameter, Some(4));
        assert!(s.bipartite);
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let s = summarize(&generators::cycle(7).unwrap());
        assert!(!s.bipartite);
    }

    #[test]
    fn empty_graph_summary() {
        let s = summarize(&Graph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.average_degree, 0.0);
        assert!(s.connected);
        assert_eq!(s.diameter, None);
        assert!(degree_histogram(&Graph::new()).is_empty());
    }

    #[test]
    fn star_degree_histogram() {
        let g = generators::star(6).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h[1], 5);
        assert_eq!(h[5], 1);
        assert_eq!(h.iter().sum::<usize>(), 6);
    }

    #[test]
    fn path_degree_histogram() {
        let g = generators::path(5).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 3);
    }
}
