//! Identifier assignments: how the adversary labels the nodes.
//!
//! In the paper the running time is always taken in the worst case over the
//! distribution of the identifiers; the assignment is therefore an explicit
//! experimental knob. An [`IdAssignment`] describes a policy and can be
//! applied to any graph.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::Result;
use crate::permutation::Permutation;
use crate::{Graph, Identifier};

/// A policy for assigning identifiers to the nodes of a graph.
///
/// Identifiers are always a permutation of `base .. base + n`, so they are
/// unique. `base` defaults to 0; use [`IdAssignment::apply_with_base`] to shift the
/// universe (e.g. to make identifiers look unrelated to node indices).
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, IdAssignment};
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let mut g = generators::cycle(6)?;
/// IdAssignment::Reversed.apply(&mut g)?;
/// assert_eq!(g.identifier(avglocal_graph::NodeId::new(0)).value(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum IdAssignment {
    /// Node `i` receives identifier `i`.
    #[default]
    Identity,
    /// Node `i` receives identifier `n - 1 - i`.
    Reversed,
    /// Node `i` receives identifier `(i + shift) mod n`.
    Rotated {
        /// Amount of the cyclic shift.
        shift: usize,
    },
    /// Identifiers are a uniformly random permutation drawn from the seed.
    Shuffled {
        /// Seed of the deterministic RNG used to draw the permutation.
        seed: u64,
    },
    /// Node `i` receives identifier `permutation.get(i)`.
    Explicit(Permutation),
}

impl IdAssignment {
    /// Produces the identifier vector this policy assigns to a graph with
    /// `n` nodes, using identifier universe `base .. base + n`.
    #[must_use]
    pub fn identifiers(&self, n: usize, base: u64) -> Vec<Identifier> {
        let perm = self.permutation(n);
        (0..n).map(|i| Identifier::new(base + perm.get(i) as u64)).collect()
    }

    /// The permutation of `0..n` underlying this policy.
    #[must_use]
    pub fn permutation(&self, n: usize) -> Permutation {
        match self {
            IdAssignment::Identity => Permutation::identity(n),
            IdAssignment::Reversed => Permutation::reversal(n),
            IdAssignment::Rotated { shift } => Permutation::rotation(n, *shift),
            IdAssignment::Shuffled { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                Permutation::random(n, &mut rng)
            }
            IdAssignment::Explicit(p) => {
                if p.len() == n {
                    p.clone()
                } else {
                    // Fall back to the identity when the explicit permutation
                    // does not match the graph size; apply() reports the error.
                    Permutation::identity(n)
                }
            }
        }
    }

    /// Applies the policy to `graph`, rewriting every node's identifier.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::GraphError::AssignmentLengthMismatch`] when an
    /// explicit permutation does not match the graph size.
    pub fn apply(&self, graph: &mut Graph) -> Result<()> {
        self.apply_with_base(graph, 0)
    }

    /// Like [`IdAssignment::apply`] but with identifiers drawn from
    /// `base .. base + n`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::GraphError::AssignmentLengthMismatch`] when an
    /// explicit permutation does not match the graph size.
    pub fn apply_with_base(&self, graph: &mut Graph, base: u64) -> Result<()> {
        let n = graph.node_count();
        if let IdAssignment::Explicit(p) = self {
            if p.len() != n {
                return Err(crate::GraphError::AssignmentLengthMismatch {
                    provided: p.len(),
                    expected: n,
                });
            }
        }
        let ids = self.identifiers(n, base);
        graph.set_all_identifiers(&ids)
    }

    /// Convenience constructor for an explicit assignment from an image
    /// vector.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::InvalidGeneratorParameter`] if the vector
    /// is not a permutation.
    pub fn from_vec(map: Vec<usize>) -> Result<Self> {
        Ok(IdAssignment::Explicit(Permutation::from_vec(map)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::NodeId;

    #[test]
    fn identity_assignment() {
        let mut g = generators::cycle(5).unwrap();
        IdAssignment::Identity.apply(&mut g).unwrap();
        for v in g.nodes() {
            assert_eq!(g.identifier(v).value() as usize, v.index());
        }
    }

    #[test]
    fn reversed_assignment() {
        let mut g = generators::path(4).unwrap();
        IdAssignment::Reversed.apply(&mut g).unwrap();
        assert_eq!(g.identifier(NodeId::new(0)).value(), 3);
        assert_eq!(g.identifier(NodeId::new(3)).value(), 0);
    }

    #[test]
    fn rotated_assignment() {
        let mut g = generators::cycle(6).unwrap();
        IdAssignment::Rotated { shift: 2 }.apply(&mut g).unwrap();
        assert_eq!(g.identifier(NodeId::new(0)).value(), 2);
        assert_eq!(g.identifier(NodeId::new(5)).value(), 1);
        assert!(g.has_unique_identifiers());
    }

    #[test]
    fn shuffled_assignment_is_deterministic_per_seed() {
        let mut a = generators::cycle(20).unwrap();
        let mut b = generators::cycle(20).unwrap();
        IdAssignment::Shuffled { seed: 42 }.apply(&mut a).unwrap();
        IdAssignment::Shuffled { seed: 42 }.apply(&mut b).unwrap();
        assert_eq!(a, b);
        let mut c = generators::cycle(20).unwrap();
        IdAssignment::Shuffled { seed: 43 }.apply(&mut c).unwrap();
        assert_ne!(a, c);
        assert!(a.has_unique_identifiers());
    }

    #[test]
    fn explicit_assignment() {
        let mut g = generators::path(3).unwrap();
        IdAssignment::from_vec(vec![2, 0, 1]).unwrap().apply(&mut g).unwrap();
        assert_eq!(g.identifier(NodeId::new(0)).value(), 2);
        assert_eq!(g.identifier(NodeId::new(1)).value(), 0);
        assert_eq!(g.identifier(NodeId::new(2)).value(), 1);
    }

    #[test]
    fn explicit_assignment_size_mismatch() {
        let mut g = generators::path(3).unwrap();
        let a = IdAssignment::from_vec(vec![1, 0]).unwrap();
        assert!(a.apply(&mut g).is_err());
    }

    #[test]
    fn base_offsets_identifier_universe() {
        let mut g = generators::cycle(4).unwrap();
        IdAssignment::Identity.apply_with_base(&mut g, 100).unwrap();
        assert_eq!(g.identifier(NodeId::new(0)).value(), 100);
        assert_eq!(g.identifier(NodeId::new(3)).value(), 103);
    }

    #[test]
    fn identifiers_helper_matches_apply() {
        let assignment = IdAssignment::Shuffled { seed: 5 };
        let ids = assignment.identifiers(8, 0);
        let mut g = generators::cycle(8).unwrap();
        assignment.apply(&mut g).unwrap();
        let applied: Vec<_> = g.identifiers().collect();
        assert_eq!(ids, applied);
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(IdAssignment::default(), IdAssignment::Identity);
    }

    #[test]
    fn invalid_explicit_vector_rejected() {
        assert!(IdAssignment::from_vec(vec![0, 0]).is_err());
    }
}
