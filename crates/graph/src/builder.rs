//! Incremental construction of graphs with validation.

use crate::error::{GraphError, Result};
use crate::{Graph, Identifier, NodeId};

/// Builder for [`Graph`] values that defers validation to a single point.
///
/// The builder collects nodes (by identifier) and edges (by identifier pair)
/// and checks uniqueness of identifiers and well-formedness of edges when
/// [`GraphBuilder::build`] is called. It is convenient when a graph is
/// described by data (for example a list of identifier pairs) rather than
/// constructed programmatically.
///
/// # Examples
///
/// ```
/// use avglocal_graph::GraphBuilder;
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let g = GraphBuilder::new()
///     .node(10)
///     .node(20)
///     .node(30)
///     .edge(10, 20)
///     .edge(20, 30)
///     .build()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    identifiers: Vec<u64>,
    edges: Vec<(u64, u64)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Declares a node carrying identifier `identifier`.
    #[must_use]
    pub fn node(mut self, identifier: u64) -> Self {
        self.identifiers.push(identifier);
        self
    }

    /// Declares several nodes at once.
    #[must_use]
    pub fn nodes<I: IntoIterator<Item = u64>>(mut self, identifiers: I) -> Self {
        self.identifiers.extend(identifiers);
        self
    }

    /// Declares an undirected edge between the nodes carrying `a` and `b`.
    #[must_use]
    pub fn edge(mut self, a: u64, b: u64) -> Self {
        self.edges.push((a, b));
        self
    }

    /// Declares several edges at once.
    #[must_use]
    pub fn edges<I: IntoIterator<Item = (u64, u64)>>(mut self, edges: I) -> Self {
        self.edges.extend(edges);
        self
    }

    /// Number of nodes declared so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.identifiers.len()
    }

    /// Number of edges declared so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates the description and produces the [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateIdentifier`] when two nodes share an
    /// identifier, [`GraphError::InvalidGeneratorParameter`] when an edge
    /// references an undeclared identifier, and propagates edge errors
    /// ([`GraphError::SelfLoop`], [`GraphError::DuplicateEdge`]).
    pub fn build(self) -> Result<Graph> {
        let mut graph = Graph::with_capacity(self.identifiers.len());
        let mut ids: Vec<NodeId> = Vec::with_capacity(self.identifiers.len());
        for raw in &self.identifiers {
            ids.push(graph.add_node(Identifier::new(*raw)));
        }
        if !graph.has_unique_identifiers() {
            let dup = duplicate(&self.identifiers)
                .expect("uniqueness check failed, so a duplicate exists");
            return Err(GraphError::DuplicateIdentifier { identifier: dup });
        }
        for (a, b) in &self.edges {
            let u = graph.node_by_identifier(Identifier::new(*a)).ok_or_else(|| {
                GraphError::InvalidGeneratorParameter {
                    reason: format!("edge references unknown identifier {a}"),
                }
            })?;
            let v = graph.node_by_identifier(Identifier::new(*b)).ok_or_else(|| {
                GraphError::InvalidGeneratorParameter {
                    reason: format!("edge references unknown identifier {b}"),
                }
            })?;
            graph.add_edge(u, v)?;
        }
        Ok(graph)
    }
}

fn duplicate(values: &[u64]) -> Option<u64> {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let g = GraphBuilder::new()
            .nodes([1, 2, 3, 4])
            .edges([(1, 2), (2, 3), (3, 4), (4, 1)])
            .build()
            .unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_unique_identifiers());
    }

    #[test]
    fn duplicate_identifier_rejected() {
        let err = GraphBuilder::new().node(1).node(1).build().unwrap_err();
        assert_eq!(err, GraphError::DuplicateIdentifier { identifier: 1 });
    }

    #[test]
    fn unknown_identifier_in_edge_rejected() {
        let err = GraphBuilder::new().node(1).node(2).edge(1, 9).build().unwrap_err();
        assert!(matches!(err, GraphError::InvalidGeneratorParameter { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let err = GraphBuilder::new().node(1).edge(1, 1).build().unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { .. }));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let err = GraphBuilder::new().nodes([1, 2]).edge(1, 2).edge(2, 1).build().unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
    }

    #[test]
    fn counts_track_declarations() {
        let b = GraphBuilder::new().nodes([1, 2, 3]).edge(1, 2);
        assert_eq!(b.node_count(), 3);
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(g.is_empty());
    }
}
