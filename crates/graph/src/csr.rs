//! Compressed sparse row (CSR) adjacency snapshots.
//!
//! [`Graph`] stores adjacency as one `Vec` per node, which is the right shape
//! for incremental construction but the wrong one for traversal-heavy hot
//! loops: every neighbour list is its own allocation, so a BFS chases a
//! pointer per node. [`CsrGraph`] is the frozen, read-only counterpart — two
//! flat arrays (`offsets`, `targets`) plus the identifier table — produced
//! once per execution by [`Graph::freeze`] and shared immutably by every
//! worker thread. Port order (the neighbour order of the source graph) is
//! preserved exactly, so anything derived from a CSR snapshot matches the
//! `Graph`-based code paths node for node.
//!
//! # Parallel freezing
//!
//! Freezing was the one remaining `O(n + m)` serial step in front of every
//! parallel sweep, so [`CsrGraph::from_graph`] now builds large snapshots on
//! the persistent worker pool: the degree table is counted in parallel, the
//! offsets are a (cheap, serial) prefix sum over it, and the target array is
//! scattered in parallel by recursively splitting the node range — every
//! node owns a disjoint slice of `targets` (`offsets[v] .. offsets[v + 1]`),
//! so the split is race-free by construction while the pool's atomic chunk
//! cursors distribute the halves dynamically. A parallel connected-components
//! labelling pass (lock-free union-find, see [`crate::components`]) runs over
//! the finished arrays and feeds the per-component experiment mode. Small
//! graphs take the serial path ([`CsrGraph::from_graph_serial`]), which is
//! kept intact as the bit-identical reference the parallel build is
//! property-tested against.

use std::sync::Arc;

use rayon::prelude::*;

use crate::components::ComponentLabels;
use crate::{Graph, Identifier, NodeId};

/// Below this many nodes + edge endpoints, [`CsrGraph::from_graph`] uses the
/// serial build: the pool's scheduling overhead would dominate the copy.
const PARALLEL_FREEZE_CUTOFF: usize = 1 << 13;

/// Node ranges at most this long are scattered inline instead of being split
/// further across the pool.
const SCATTER_GRAIN: usize = 1 << 10;

/// A frozen adjacency snapshot of a [`Graph`] in compressed sparse row form.
///
/// Node `v`'s neighbours are `targets[offsets[v] .. offsets[v + 1]]`, in the
/// same port order as [`Graph::neighbors`]. Indices are `u32`, which halves
/// the memory traffic of the hot traversal loops; graphs with more than
/// `u32::MAX - 1` nodes are rejected by [`Graph::freeze`].
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, NodeId};
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let g = generators::cycle(8)?;
/// let csr = g.freeze();
/// assert_eq!(csr.node_count(), 8);
/// assert_eq!(csr.degree(0), 2);
/// assert_eq!(csr.neighbors(0), &[1, 7]);
/// assert_eq!(csr.identifier(3), g.identifier(NodeId::new(3)));
/// assert!(csr.is_connected());
/// assert_eq!(csr.components().count(), 1);
/// # Ok(())
/// # }
/// ```
/// The adjacency is immutable once frozen and shared behind an [`Arc`], so
/// cloning a snapshot — the per-trial operation of an identifier-assignment
/// sweep, which clones and then calls [`CsrGraph::set_identifiers`] — copies
/// only the `O(n)` identifier table, never the `O(n + m)` edge arrays or the
/// component labelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v] .. offsets[v + 1]` brackets node `v`'s slice of `targets`.
    offsets: Arc<[u32]>,
    /// Concatenated neighbour lists, in port order.
    targets: Arc<[u32]>,
    /// Canonical connected-component labelling, discovered at freeze time.
    components: Arc<ComponentLabels>,
    /// Identifier of each node, indexed by node.
    identifiers: Vec<Identifier>,
}

/// Checks the `u32` index limits shared by every build path.
fn check_limits(graph: &Graph) -> (usize, usize) {
    let n = graph.node_count();
    assert!(
        u32::try_from(n).is_ok_and(|n| n < u32::MAX),
        "CSR snapshots index nodes with u32; {n} nodes do not fit"
    );
    let directed_edges = 2 * graph.edge_count();
    assert!(
        u32::try_from(directed_edges).is_ok(),
        "CSR snapshots index edge offsets with u32; {directed_edges} edge endpoints do not fit"
    );
    (n, directed_edges)
}

impl CsrGraph {
    /// Builds the snapshot; called through [`Graph::freeze`].
    ///
    /// Dispatches to the parallel build for graphs large enough to amortise
    /// the pool's scheduling overhead and to the serial build otherwise; both
    /// paths produce bit-identical snapshots, so the cutoff is purely a
    /// performance choice.
    ///
    /// # Panics
    ///
    /// Panics when the graph has `u32::MAX` nodes or more, or when its
    /// directed edge count `2·m` exceeds `u32::MAX` (dense graphs can hit the
    /// edge limit well below the node limit).
    #[must_use]
    pub fn from_graph(graph: &Graph) -> Self {
        let (n, directed_edges) = check_limits(graph);
        // The parallel build only wins with real concurrency underneath: a
        // 1-participant pool runs it inline with pure overhead, and a pool
        // oversubscribed onto a single core pays for contention instead of
        // parallelism. Both paths are bit-identical, so this is purely a
        // performance choice.
        let effective_parallelism = rayon::current_num_threads()
            .min(std::thread::available_parallelism().map_or(1, usize::from));
        if n + directed_edges < PARALLEL_FREEZE_CUTOFF || effective_parallelism <= 1 {
            CsrGraph::from_graph_serial(graph)
        } else {
            CsrGraph::from_graph_parallel(graph)
        }
    }

    /// The serial reference build: one left-to-right pass over the adjacency
    /// lists, then a BFS component sweep. [`CsrGraph::from_graph_parallel`]
    /// is property-tested bit-identical to this.
    ///
    /// # Panics
    ///
    /// Same limits as [`CsrGraph::from_graph`].
    #[must_use]
    pub fn from_graph_serial(graph: &Graph) -> Self {
        let (n, directed_edges) = check_limits(graph);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(directed_edges);
        offsets.push(0);
        for v in graph.nodes() {
            for &u in graph.neighbors(v) {
                targets.push(u.index() as u32);
            }
            offsets.push(targets.len() as u32);
        }
        let components = ComponentLabels::of_csr_serial(&offsets, &targets);
        CsrGraph {
            offsets: offsets.into(),
            targets: targets.into(),
            components: Arc::new(components),
            identifiers: graph.identifiers().collect(),
        }
    }

    /// The parallel build: degrees counted in parallel, offsets prefix-summed,
    /// targets scattered by recursive node-range splitting (each node writes
    /// only its own `offsets[v] .. offsets[v + 1]` slice), and components
    /// labelled by a parallel union-find over the finished arrays.
    ///
    /// Exposed (rather than folded into the [`CsrGraph::from_graph`] cutoff)
    /// so equivalence tests and the freeze benchmark can force this path on
    /// graphs of any size.
    ///
    /// # Panics
    ///
    /// Same limits as [`CsrGraph::from_graph`].
    #[must_use]
    pub fn from_graph_parallel(graph: &Graph) -> Self {
        let (n, directed_edges) = check_limits(graph);
        // Degree count: one independent O(1) lookup per node.
        let degrees: Vec<u32> =
            (0..n).into_par_iter().map(|v| graph.degree(NodeId::new(v)) as u32).collect();
        // Offsets: a serial prefix sum — O(n) additions, negligible next to
        // the O(n + m) scatter it unblocks.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &d in &degrees {
            running += d;
            offsets.push(running);
        }
        debug_assert_eq!(running as usize, directed_edges);
        // Scatter: every node owns the disjoint slice
        // `targets[offsets[v] .. offsets[v + 1]]`, so recursively splitting
        // the node range (and the target slice at the matching offset) lets
        // the pool fill the halves concurrently without locks or unsafe.
        let mut targets = vec![0u32; directed_edges];
        scatter(graph, &offsets, &mut targets, 0, n);
        let components = ComponentLabels::of_csr_parallel(&offsets, &targets);
        CsrGraph {
            offsets: offsets.into(),
            targets: targets.into(),
            components: Arc::new(components),
            identifiers: graph.identifiers().collect(),
        }
    }

    /// Assembles a snapshot from arrays that have already been validated.
    ///
    /// Only the snapshot decoder ([`crate::snapshot`]) calls this, after
    /// checking every structural invariant (monotone offsets, endpoint
    /// bounds, symmetry, label consistency); the arrays are trusted here.
    pub(crate) fn from_validated_parts(
        offsets: Vec<u32>,
        targets: Vec<u32>,
        components: ComponentLabels,
        identifiers: Vec<Identifier>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), identifiers.len() + 1);
        debug_assert_eq!(components.node_count() + 1, offsets.len());
        CsrGraph {
            offsets: offsets.into(),
            targets: targets.into(),
            components: Arc::new(components),
            identifiers,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `v`.
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbours of node `v`, in port order.
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The raw offset array (`offsets[v] .. offsets[v + 1]` brackets node
    /// `v`'s slice of [`CsrGraph::targets`]).
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated neighbour lists, in port order.
    #[must_use]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The connected-component labelling discovered when the snapshot was
    /// frozen.
    #[must_use]
    pub fn components(&self) -> &ComponentLabels {
        &self.components
    }

    /// Returns `true` when the snapshot has at most one component.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.components.is_connected()
    }

    /// Identifier of node `v`.
    #[must_use]
    pub fn identifier(&self, v: u32) -> Identifier {
        self.identifiers[v as usize]
    }

    /// All identifiers, indexed by node.
    #[must_use]
    pub fn identifiers(&self) -> &[Identifier] {
        &self.identifiers
    }

    /// Host [`NodeId`] of CSR node `v`.
    #[must_use]
    pub fn node_id(&self, v: u32) -> NodeId {
        NodeId::new(v as usize)
    }

    /// Iterator over all undirected edges as `(u, v)` node-index pairs with
    /// `u < v`, in node order — the edge stream the measure layer folds over.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count() as u32).flat_map(move |v| {
            self.neighbors(v).iter().copied().filter_map(move |u| (v < u).then_some((v, u)))
        })
    }

    /// Replaces the identifier table, keeping the frozen adjacency.
    ///
    /// Experiment trials vary only the identifier assignment, so a session
    /// can reuse one adjacency snapshot across trials and swap the `O(n)`
    /// identifier table instead of re-freezing the `O(n + m)` structure.
    ///
    /// # Panics
    ///
    /// Panics when `identifiers` does not provide exactly one identifier per
    /// node. Callers handling untrusted table lengths should use
    /// [`CsrGraph::try_set_identifiers`] instead.
    pub fn set_identifiers(&mut self, identifiers: &[Identifier]) {
        assert!(
            self.try_set_identifiers(identifiers).is_ok(),
            "identifier table must cover every node exactly once ({} identifiers for {} nodes)",
            identifiers.len(),
            self.node_count()
        );
    }

    /// Fallible counterpart of [`CsrGraph::set_identifiers`] for untrusted
    /// table lengths.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::AssignmentLengthMismatch`] (leaving the
    /// snapshot unchanged) when `identifiers` does not provide exactly one
    /// identifier per node.
    pub fn try_set_identifiers(&mut self, identifiers: &[Identifier]) -> crate::Result<()> {
        if identifiers.len() != self.node_count() {
            return Err(crate::GraphError::AssignmentLengthMismatch {
                provided: identifiers.len(),
                expected: self.node_count(),
            });
        }
        self.identifiers.clear();
        self.identifiers.extend_from_slice(identifiers);
        Ok(())
    }
}

/// Fills `targets` (the slice covering nodes `lo..hi`) with the neighbour
/// lists of those nodes, splitting the range across the pool above
/// [`SCATTER_GRAIN`].
fn scatter(graph: &Graph, offsets: &[u32], targets: &mut [u32], lo: usize, hi: usize) {
    if hi - lo <= SCATTER_GRAIN {
        let base = offsets[lo] as usize;
        let mut cursor = 0usize;
        for v in lo..hi {
            for &u in graph.neighbors(NodeId::new(v)) {
                targets[cursor] = u.index() as u32;
                cursor += 1;
            }
            debug_assert_eq!(cursor, offsets[v + 1] as usize - base);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let split = (offsets[mid] - offsets[lo]) as usize;
    let (left, right) = targets.split_at_mut(split);
    rayon::join(
        || scatter(graph, offsets, left, lo, mid),
        || scatter(graph, offsets, right, mid, hi),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn csr_mirrors_graph_adjacency() {
        let graphs = [
            generators::cycle(9).unwrap(),
            generators::path(5).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::complete(6).unwrap(),
            generators::petersen(),
        ];
        for g in &graphs {
            let csr = g.freeze();
            assert_eq!(csr.node_count(), g.node_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            for v in g.nodes() {
                let expected: Vec<u32> = g.neighbors(v).iter().map(|u| u.index() as u32).collect();
                assert_eq!(csr.neighbors(v.index() as u32), expected.as_slice());
                assert_eq!(csr.degree(v.index() as u32), g.degree(v));
                assert_eq!(csr.identifier(v.index() as u32), g.identifier(v));
            }
            assert!(csr.is_connected());
        }
    }

    #[test]
    fn empty_graph_freezes() {
        let csr = Graph::new().freeze();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.identifiers().is_empty());
        assert!(csr.is_connected());
        assert_eq!(csr.components().count(), 0);
    }

    #[test]
    fn parallel_build_matches_serial_on_every_small_family() {
        let graphs = [
            generators::cycle(9).unwrap(),
            generators::path(5).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::complete(6).unwrap(),
            generators::star(7).unwrap(),
            Graph::new(),
        ];
        for g in &graphs {
            assert_eq!(CsrGraph::from_graph_serial(g), CsrGraph::from_graph_parallel(g));
        }
    }

    #[test]
    fn parallel_build_matches_serial_above_the_cutoff() {
        let g = generators::cycle(PARALLEL_FREEZE_CUTOFF).unwrap();
        let serial = CsrGraph::from_graph_serial(&g);
        let parallel = CsrGraph::from_graph_parallel(&g);
        assert_eq!(serial, parallel);
        // The dispatching entry point agrees with both.
        assert_eq!(g.freeze(), serial);
    }

    #[test]
    fn edges_iterate_each_edge_once() {
        let g = generators::grid(3, 4).unwrap();
        let csr = g.freeze();
        let edges: Vec<(u32, u32)> = csr.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for &(u, v) in &edges {
            assert!(u < v);
            assert!(g.contains_edge(NodeId::new(u as usize), NodeId::new(v as usize)));
        }
    }

    #[test]
    fn disconnected_snapshot_reports_components() {
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_node(crate::Identifier::new(i));
        }
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        g.add_edge(NodeId::new(3), NodeId::new(4)).unwrap();
        let csr = g.freeze();
        assert!(!csr.is_connected());
        assert_eq!(csr.components().count(), 4);
        assert_eq!(csr.components().sizes(), &[2, 1, 2, 1]);
    }

    #[test]
    fn set_identifiers_swaps_the_table_only() {
        let g = generators::cycle(5).unwrap();
        let mut csr = g.freeze();
        let reversed: Vec<Identifier> = (0..5).rev().map(Identifier::new).collect();
        csr.set_identifiers(&reversed);
        assert_eq!(csr.identifier(0), Identifier::new(4));
        assert_eq!(csr.identifiers(), reversed.as_slice());
        // Adjacency untouched.
        assert_eq!(csr.neighbors(0), g.freeze().neighbors(0));
    }

    #[test]
    #[should_panic(expected = "identifier table must cover every node")]
    fn set_identifiers_rejects_wrong_length() {
        let mut csr = generators::cycle(4).unwrap().freeze();
        csr.set_identifiers(&[Identifier::new(0)]);
    }

    #[test]
    fn try_set_identifiers_reports_wrong_length_and_leaves_table_intact() {
        let mut csr = generators::cycle(4).unwrap().freeze();
        let before: Vec<Identifier> = csr.identifiers().to_vec();
        let err = csr.try_set_identifiers(&[Identifier::new(9)]).unwrap_err();
        assert!(matches!(
            err,
            crate::GraphError::AssignmentLengthMismatch { provided: 1, expected: 4 }
        ));
        assert_eq!(csr.identifiers(), before.as_slice());
        let reversed: Vec<Identifier> = (0..4).rev().map(Identifier::new).collect();
        csr.try_set_identifiers(&reversed).unwrap();
        assert_eq!(csr.identifiers(), reversed.as_slice());
    }

    #[test]
    fn clones_share_the_adjacency_arrays() {
        let csr = generators::cycle(6).unwrap().freeze();
        let mut clone = csr.clone();
        // The adjacency is behind an Arc: a clone points at the same arrays…
        assert!(std::ptr::eq(csr.neighbors(0).as_ptr(), clone.neighbors(0).as_ptr()));
        // …and so is the component labelling…
        assert!(Arc::ptr_eq(&csr.components, &clone.components));
        // …while the identifier table stays independent.
        clone.set_identifiers(&(0..6).rev().map(Identifier::new).collect::<Vec<_>>());
        assert_ne!(csr.identifier(0), clone.identifier(0));
        assert_eq!(csr.neighbors(3), clone.neighbors(3));
    }

    #[test]
    fn node_id_round_trip() {
        let g = generators::cycle(4).unwrap();
        let csr = g.freeze();
        assert_eq!(csr.node_id(3), NodeId::new(3));
    }
}
