//! Compressed sparse row (CSR) adjacency snapshots.
//!
//! [`Graph`] stores adjacency as one `Vec` per node, which is the right shape
//! for incremental construction but the wrong one for traversal-heavy hot
//! loops: every neighbour list is its own allocation, so a BFS chases a
//! pointer per node. [`CsrGraph`] is the frozen, read-only counterpart — two
//! flat arrays (`offsets`, `targets`) plus the identifier table — produced
//! once per execution by [`Graph::freeze`] and shared immutably by every
//! worker thread. Port order (the neighbour order of the source graph) is
//! preserved exactly, so anything derived from a CSR snapshot matches the
//! `Graph`-based code paths node for node.

use std::sync::Arc;

use crate::{Graph, Identifier, NodeId};

/// A frozen adjacency snapshot of a [`Graph`] in compressed sparse row form.
///
/// Node `v`'s neighbours are `targets[offsets[v] .. offsets[v + 1]]`, in the
/// same port order as [`Graph::neighbors`]. Indices are `u32`, which halves
/// the memory traffic of the hot traversal loops; graphs with more than
/// `u32::MAX - 1` nodes are rejected by [`Graph::freeze`].
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, NodeId};
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let g = generators::cycle(8)?;
/// let csr = g.freeze();
/// assert_eq!(csr.node_count(), 8);
/// assert_eq!(csr.degree(0), 2);
/// assert_eq!(csr.neighbors(0), &[1, 7]);
/// assert_eq!(csr.identifier(3), g.identifier(NodeId::new(3)));
/// # Ok(())
/// # }
/// ```
/// The adjacency is immutable once frozen and shared behind an [`Arc`], so
/// cloning a snapshot — the per-trial operation of an identifier-assignment
/// sweep, which clones and then calls [`CsrGraph::set_identifiers`] — copies
/// only the `O(n)` identifier table, never the `O(n + m)` edge arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v] .. offsets[v + 1]` brackets node `v`'s slice of `targets`.
    offsets: Arc<[u32]>,
    /// Concatenated neighbour lists, in port order.
    targets: Arc<[u32]>,
    /// Identifier of each node, indexed by node.
    identifiers: Vec<Identifier>,
}

impl CsrGraph {
    /// Builds the snapshot; called through [`Graph::freeze`].
    ///
    /// # Panics
    ///
    /// Panics when the graph has `u32::MAX` nodes or more, or when its
    /// directed edge count `2·m` exceeds `u32::MAX` (dense graphs can hit the
    /// edge limit well below the node limit).
    #[must_use]
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        assert!(
            u32::try_from(n).is_ok_and(|n| n < u32::MAX),
            "CSR snapshots index nodes with u32; {n} nodes do not fit"
        );
        let directed_edges = 2 * graph.edge_count();
        assert!(
            u32::try_from(directed_edges).is_ok(),
            "CSR snapshots index edge offsets with u32; {directed_edges} edge endpoints do not fit"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(directed_edges);
        offsets.push(0);
        for v in graph.nodes() {
            for &u in graph.neighbors(v) {
                targets.push(u.index() as u32);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets: offsets.into(),
            targets: targets.into(),
            identifiers: graph.identifiers().collect(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `v`.
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbours of node `v`, in port order.
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Identifier of node `v`.
    #[must_use]
    pub fn identifier(&self, v: u32) -> Identifier {
        self.identifiers[v as usize]
    }

    /// All identifiers, indexed by node.
    #[must_use]
    pub fn identifiers(&self) -> &[Identifier] {
        &self.identifiers
    }

    /// Host [`NodeId`] of CSR node `v`.
    #[must_use]
    pub fn node_id(&self, v: u32) -> NodeId {
        NodeId::new(v as usize)
    }

    /// Replaces the identifier table, keeping the frozen adjacency.
    ///
    /// Experiment trials vary only the identifier assignment, so a session
    /// can reuse one adjacency snapshot across trials and swap the `O(n)`
    /// identifier table instead of re-freezing the `O(n + m)` structure.
    ///
    /// # Panics
    ///
    /// Panics when `identifiers` does not provide exactly one identifier per
    /// node.
    pub fn set_identifiers(&mut self, identifiers: &[Identifier]) {
        assert_eq!(
            identifiers.len(),
            self.node_count(),
            "identifier table must cover every node exactly once"
        );
        self.identifiers.clear();
        self.identifiers.extend_from_slice(identifiers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn csr_mirrors_graph_adjacency() {
        let graphs = [
            generators::cycle(9).unwrap(),
            generators::path(5).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::complete(6).unwrap(),
            generators::petersen(),
        ];
        for g in &graphs {
            let csr = g.freeze();
            assert_eq!(csr.node_count(), g.node_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            for v in g.nodes() {
                let expected: Vec<u32> = g.neighbors(v).iter().map(|u| u.index() as u32).collect();
                assert_eq!(csr.neighbors(v.index() as u32), expected.as_slice());
                assert_eq!(csr.degree(v.index() as u32), g.degree(v));
                assert_eq!(csr.identifier(v.index() as u32), g.identifier(v));
            }
        }
    }

    #[test]
    fn empty_graph_freezes() {
        let csr = Graph::new().freeze();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.identifiers().is_empty());
    }

    #[test]
    fn set_identifiers_swaps_the_table_only() {
        let g = generators::cycle(5).unwrap();
        let mut csr = g.freeze();
        let reversed: Vec<Identifier> = (0..5).rev().map(Identifier::new).collect();
        csr.set_identifiers(&reversed);
        assert_eq!(csr.identifier(0), Identifier::new(4));
        assert_eq!(csr.identifiers(), reversed.as_slice());
        // Adjacency untouched.
        assert_eq!(csr.neighbors(0), g.freeze().neighbors(0));
    }

    #[test]
    #[should_panic(expected = "identifier table must cover every node")]
    fn set_identifiers_rejects_wrong_length() {
        let mut csr = generators::cycle(4).unwrap().freeze();
        csr.set_identifiers(&[Identifier::new(0)]);
    }

    #[test]
    fn clones_share_the_adjacency_arrays() {
        let csr = generators::cycle(6).unwrap().freeze();
        let mut clone = csr.clone();
        // The adjacency is behind an Arc: a clone points at the same arrays…
        assert!(std::ptr::eq(csr.neighbors(0).as_ptr(), clone.neighbors(0).as_ptr()));
        // …while the identifier table stays independent.
        clone.set_identifiers(&(0..6).rev().map(Identifier::new).collect::<Vec<_>>());
        assert_ne!(csr.identifier(0), clone.identifier(0));
        assert_eq!(csr.neighbors(3), clone.neighbors(3));
    }

    #[test]
    fn node_id_round_trip() {
        let g = generators::cycle(4).unwrap();
        let csr = g.freeze();
        assert_eq!(csr.node_id(3), NodeId::new(3));
    }
}
