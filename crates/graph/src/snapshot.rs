//! Versioned binary snapshots of [`CsrGraph`] with a validating decoder.
//!
//! A frozen CSR snapshot is the unit a radius-query service would persist,
//! ship between machines, or eventually memory-map at web scale — which
//! makes its byte form a **trust boundary**: bytes arriving from disk or the
//! network must be assumed adversarial. The decoder here therefore treats
//! its input as untrusted end to end. Every structural invariant the rest of
//! the crate relies on is re-established before a [`CsrGraph`] is handed
//! back, and every violation is a typed [`GraphError::CorruptSnapshot`] —
//! never a panic, whatever the bytes.
//!
//! # Format (version 1)
//!
//! All integers are little-endian. The file is one header followed by five
//! flat arrays:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0  | 8 | magic `b"AVGLSNAP"` |
//! | 8  | 4 | format version (`u32`, currently 1) |
//! | 12 | 8 | FNV-1a 64 checksum of every byte after this field |
//! | 20 | 8 | node count `n` (`u64`) |
//! | 28 | 8 | directed edge count `2m` (`u64`) |
//! | 36 | 8 | component count `c` (`u64`) |
//! | 44 | `4(n+1)` | offsets (`u32` each) |
//! | …  | `4·2m` | targets (`u32` each, port order) |
//! | …  | `4n` | component label per node (`u32` each) |
//! | …  | `4c` | component sizes (`u32` each) |
//! | …  | `8n` | identifier per node (`u64` each) |
//!
//! The total length is implied exactly by the header; truncated input and
//! trailing garbage are both rejected.
//!
//! # What the decoder checks
//!
//! 1. **Header**: magic, version, and the checksum of the entire payload
//!    (so any bit flip after byte 20 is detected before parsing).
//! 2. **Counts**: `n` and `2m` fit the crate's `u32` index limits, `2m` is
//!    even, `c ≤ n`, and the byte length matches the implied layout exactly.
//! 3. **Offsets**: start at 0, are monotone non-decreasing, and end at `2m`.
//! 4. **Targets**: every endpoint is `< n`, no self loops, no duplicate
//!    neighbours, and the adjacency is **symmetric** (`u ∈ N(v)` ⇔
//!    `v ∈ N(u)`), so the result is a simple undirected graph.
//! 5. **Components**: the stored labelling must equal the canonical one
//!    recomputed from the validated adjacency (labels *and* sizes), so a
//!    decoded snapshot's component structure can never disagree with its
//!    edges.
//!
//! Encoding then decoding is bit-identical: `from_bytes(&to_bytes(csr))`
//! reproduces `csr` exactly, including port order, identifiers, and the
//! component labelling.

use std::collections::HashSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::components::ComponentLabels;
use crate::error::{GraphError, Result};
use crate::{CsrGraph, Identifier};

/// The 8-byte magic prefix of every snapshot.
pub const MAGIC: [u8; 8] = *b"AVGLSNAP";

/// The current (and only) snapshot format version.
pub const VERSION: u32 = 1;

/// Byte length of the fixed header (magic, version, checksum, three counts).
pub const HEADER_LEN: usize = 44;

/// Byte offset at which the checksummed region starts (everything after the
/// checksum field itself).
const CHECKSUMMED_FROM: usize = 20;

/// FNV-1a 64-bit hash — the integrity checksum of the snapshot payload.
///
/// Not cryptographic: it defends against accidental corruption (truncation
/// aside, any single bit flip changes the digest), not against a forger, who
/// is already constrained by the structural validation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl CsrGraph {
    /// Serialises the snapshot into the version-1 binary format described in
    /// [`crate::snapshot`].
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.node_count();
        let offsets = self.offsets();
        let targets = self.targets();
        let labels = self.components().labels();
        let sizes = self.components().sizes();
        let total = HEADER_LEN
            + 4 * offsets.len()
            + 4 * targets.len()
            + 4 * labels.len()
            + 4 * sizes.len()
            + 8 * n;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum placeholder
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(targets.len() as u64).to_le_bytes());
        out.extend_from_slice(&(sizes.len() as u64).to_le_bytes());
        for &x in offsets {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for &x in targets {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for &x in labels {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for &x in sizes {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for id in self.identifiers() {
            out.extend_from_slice(&id.value().to_le_bytes());
        }
        debug_assert_eq!(out.len(), total);
        let checksum = fnv1a(&out[CHECKSUMMED_FROM..]);
        out[12..20].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and validates a snapshot produced by [`CsrGraph::to_bytes`].
    ///
    /// The input is untrusted: see [`crate::snapshot`] for the full list of
    /// checks. Accepted snapshots round-trip bit-identically (re-encoding the
    /// returned graph reproduces `bytes`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CorruptSnapshot`] — carrying a best-effort byte
    /// offset and a description of the violated invariant — for any input
    /// that is not a valid version-1 snapshot. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<CsrGraph> {
        let corrupt =
            |offset: usize, reason: String| GraphError::CorruptSnapshot { offset, reason };
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(
                bytes.len(),
                format!("truncated header: {} bytes, need at least {HEADER_LEN}", bytes.len()),
            ));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt(0, "bad magic (not an AVGLSNAP snapshot)".to_string()));
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(corrupt(
                8,
                format!("unsupported format version {version}, expected {VERSION}"),
            ));
        }
        let stored_checksum = read_u64(bytes, 12);
        let actual_checksum = fnv1a(&bytes[CHECKSUMMED_FROM..]);
        if stored_checksum != actual_checksum {
            return Err(corrupt(
                12,
                format!("checksum mismatch: header says {stored_checksum:#018x}, payload hashes to {actual_checksum:#018x}"),
            ));
        }
        let n_raw = read_u64(bytes, 20);
        let de_raw = read_u64(bytes, 28);
        let cc_raw = read_u64(bytes, 36);
        // The crate indexes nodes and edge offsets with u32 (see
        // `CsrGraph`), so the counts must fit before any array is sized.
        let Some(n) = usize_u32_count(n_raw, u64::from(u32::MAX) - 1) else {
            return Err(corrupt(20, format!("node count {n_raw} exceeds the u32 index limit")));
        };
        let Some(de) = usize_u32_count(de_raw, u64::from(u32::MAX)) else {
            return Err(corrupt(
                28,
                format!("directed edge count {de_raw} exceeds the u32 index limit"),
            ));
        };
        if de % 2 != 0 {
            return Err(corrupt(
                28,
                format!(
                    "directed edge count {de} is odd; undirected snapshots store each edge twice"
                ),
            ));
        }
        let Some(cc) = usize_u32_count(cc_raw, u64::from(u32::MAX)) else {
            return Err(corrupt(
                36,
                format!("component count {cc_raw} exceeds the u32 index limit"),
            ));
        };
        if cc > n {
            return Err(corrupt(36, format!("{cc} components for {n} nodes")));
        }
        // Exact length check before any slicing: u128 arithmetic cannot
        // overflow for counts already bounded by u32.
        let expected = HEADER_LEN as u128
            + 4 * (n as u128 + 1)
            + 4 * de as u128
            + 4 * n as u128
            + 4 * cc as u128
            + 8 * n as u128;
        if bytes.len() as u128 != expected {
            return Err(corrupt(
                bytes.len().min(HEADER_LEN),
                format!(
                    "byte length {} does not match the {expected} implied by the header",
                    bytes.len()
                ),
            ));
        }
        let offsets_at = HEADER_LEN;
        let targets_at = offsets_at + 4 * (n + 1);
        let labels_at = targets_at + 4 * de;
        let sizes_at = labels_at + 4 * n;
        let identifiers_at = sizes_at + 4 * cc;

        let offsets: Vec<u32> = (0..=n).map(|i| read_u32(bytes, offsets_at + 4 * i)).collect();
        if offsets[0] != 0 {
            return Err(corrupt(
                offsets_at,
                format!("offsets must start at 0, found {}", offsets[0]),
            ));
        }
        if let Some(v) = (0..n).find(|&v| offsets[v] > offsets[v + 1]) {
            return Err(corrupt(
                offsets_at + 4 * v,
                format!("offsets not monotone at node {v}: {} > {}", offsets[v], offsets[v + 1]),
            ));
        }
        if offsets[n] as usize != de {
            return Err(corrupt(
                offsets_at + 4 * n,
                format!("final offset {} disagrees with directed edge count {de}", offsets[n]),
            ));
        }
        let targets: Vec<u32> = (0..de).map(|i| read_u32(bytes, targets_at + 4 * i)).collect();
        // Endpoint bounds, self loops, duplicates, and symmetry in one
        // directed-edge pass: a simple undirected graph stores each edge as
        // two distinct directed arcs, so the arc set must be duplicate-free,
        // loop-free, and closed under reversal.
        let mut arcs: HashSet<(u32, u32)> = HashSet::with_capacity(de);
        for v in 0..n {
            let (from, to) = (offsets[v] as usize, offsets[v + 1] as usize);
            for (i, &u) in targets.iter().enumerate().take(to).skip(from) {
                let at = targets_at + 4 * i;
                if u as usize >= n {
                    return Err(corrupt(
                        at,
                        format!("edge endpoint {u} out of bounds for {n} nodes"),
                    ));
                }
                if u as usize == v {
                    return Err(corrupt(at, format!("self loop on node {v}")));
                }
                if !arcs.insert((v as u32, u)) {
                    return Err(corrupt(at, format!("duplicate neighbour {u} in node {v}'s list")));
                }
            }
        }
        for &(v, u) in &arcs {
            if !arcs.contains(&(u, v)) {
                return Err(corrupt(
                    targets_at,
                    format!("asymmetric adjacency: {v} lists {u} but {u} does not list {v}"),
                ));
            }
        }
        // Component labelling: recompute the canonical labelling from the
        // now-validated adjacency and demand the stored one matches exactly.
        let components = ComponentLabels::of_csr_serial(&offsets, &targets);
        if components.count() != cc {
            return Err(corrupt(
                36,
                format!("header claims {cc} components, adjacency has {}", components.count()),
            ));
        }
        for v in 0..n {
            let stored = read_u32(bytes, labels_at + 4 * v);
            if stored != components.labels()[v] {
                return Err(corrupt(
                    labels_at + 4 * v,
                    format!(
                        "component label of node {v} is {stored}, canonical labelling says {}",
                        components.labels()[v]
                    ),
                ));
            }
        }
        for c in 0..cc {
            let stored = read_u32(bytes, sizes_at + 4 * c);
            if stored != components.sizes()[c] {
                return Err(corrupt(
                    sizes_at + 4 * c,
                    format!(
                        "component {c} size is {stored}, adjacency says {}",
                        components.sizes()[c]
                    ),
                ));
            }
        }
        let identifiers: Vec<Identifier> =
            (0..n).map(|v| Identifier::new(read_u64(bytes, identifiers_at + 8 * v))).collect();
        Ok(CsrGraph::from_validated_parts(offsets, targets, components, identifiers))
    }

    /// Durably persists the snapshot to `path`.
    ///
    /// Crash safety comes from the classic write-to-temp protocol: the bytes
    /// are written to a sibling `<filename>.tmp`, fsynced, then atomically
    /// renamed over `path` (followed by a best-effort fsync of the parent
    /// directory so the rename itself is durable). A crash at any point
    /// leaves either the previous file intact or a stray `.tmp` that readers
    /// ignore — never a half-written snapshot under the final name.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SnapshotIo`] if any filesystem step fails; the
    /// temp file is removed on a best-effort basis before returning. Never
    /// panics.
    pub fn write_to_path(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let tmp = tmp_sibling(path);
        let attempt = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, path)?;
            // Durability of the rename needs the directory entry flushed too;
            // failure here is not a correctness problem (the data is either
            // fully there or the old file is), so it is best effort.
            if let Some(parent) = path.parent() {
                if let Ok(dir) = fs::File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
            Ok(())
        })();
        attempt.map_err(|e: std::io::Error| {
            let _ = fs::remove_file(&tmp);
            snapshot_io(path, &e)
        })
    }

    /// Reads and validates a snapshot previously persisted with
    /// [`CsrGraph::write_to_path`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SnapshotIo`] if the file cannot be read at all
    /// (missing, permissions, ...) and [`GraphError::CorruptSnapshot`] if
    /// bytes were read but fail validation — e.g. a write torn mid-stream by
    /// a crash, a truncation, or a bit flip. Never panics; see
    /// [`CsrGraph::from_bytes`] for the validation contract.
    pub fn read_from_path(path: impl AsRef<Path>) -> Result<CsrGraph> {
        let path = path.as_ref();
        let bytes = fs::read(path).map_err(|e| snapshot_io(path, &e))?;
        CsrGraph::from_bytes(&bytes)
    }
}

/// The sibling temp file `write_to_path` stages bytes in before the atomic
/// rename: `path` with `.tmp` appended to the full file name.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Wraps an I/O failure as a typed [`GraphError::SnapshotIo`].
fn snapshot_io(path: &Path, err: &std::io::Error) -> GraphError {
    GraphError::SnapshotIo { path: path.display().to_string(), reason: err.to_string() }
}

/// Converts a header count to `usize`, rejecting values above `limit`.
fn usize_u32_count(raw: u64, limit: u64) -> Option<usize> {
    (raw <= limit).then_some(raw as usize)
}

/// Reads a little-endian `u32`; `at + 4 <= bytes.len()` is guaranteed by the
/// exact length check.
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"))
}

/// Reads a little-endian `u64`; `at + 8 <= bytes.len()` is guaranteed by the
/// exact length check.
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Graph, IdAssignment, NodeId};

    fn sample_graphs() -> Vec<Graph> {
        let mut shuffled = generators::cycle(17).unwrap();
        IdAssignment::Shuffled { seed: 3 }.apply(&mut shuffled).unwrap();
        let mut disconnected = Graph::new();
        for i in 0..7 {
            disconnected.add_node(Identifier::new(100 + i));
        }
        disconnected.add_edge(NodeId::new(0), NodeId::new(3)).unwrap();
        disconnected.add_edge(NodeId::new(4), NodeId::new(5)).unwrap();
        vec![
            Graph::new(),
            generators::cycle(5).unwrap(),
            generators::grid(3, 4).unwrap(),
            generators::complete(6).unwrap(),
            generators::petersen(),
            shuffled,
            disconnected,
        ]
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for g in sample_graphs() {
            let csr = g.freeze();
            let bytes = csr.to_bytes();
            let decoded = CsrGraph::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, csr);
            assert_eq!(decoded.components(), csr.components());
            // Re-encoding reproduces the exact bytes.
            assert_eq!(decoded.to_bytes(), bytes);
        }
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let csr = generators::grid(3, 3).unwrap().freeze();
        let bytes = csr.to_bytes();
        for len in 0..bytes.len() {
            let err = CsrGraph::from_bytes(&bytes[..len]).unwrap_err();
            assert!(matches!(err, GraphError::CorruptSnapshot { .. }), "len {len}: {err}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let csr = generators::cycle(6).unwrap().freeze();
        let bytes = csr.to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                let err = CsrGraph::from_bytes(&mutated).unwrap_err();
                assert!(
                    matches!(err, GraphError::CorruptSnapshot { .. }),
                    "byte {byte} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = generators::cycle(4).unwrap().freeze().to_bytes();
        bytes.push(0);
        assert!(CsrGraph::from_bytes(&bytes).is_err());
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = generators::cycle(4).unwrap().freeze().to_bytes();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        let err = CsrGraph::from_bytes(&bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let mut bad_version = bytes.clone();
        bad_version[8] = 2;
        // Patch the checksum so the version check itself is exercised.
        let checksum = fnv1a(&bad_version[CHECKSUMMED_FROM..]).to_le_bytes();
        bad_version[12..20].copy_from_slice(&checksum);
        let err = CsrGraph::from_bytes(&bad_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    /// Re-checksums `bytes` in place, so structural corruption deeper than
    /// the checksum can be exercised.
    fn fix_checksum(bytes: &mut [u8]) {
        let checksum = fnv1a(&bytes[CHECKSUMMED_FROM..]).to_le_bytes();
        bytes[12..20].copy_from_slice(&checksum);
    }

    #[test]
    fn structural_corruption_is_caught_behind_a_valid_checksum() {
        let csr = generators::cycle(6).unwrap().freeze();
        let base = csr.to_bytes();

        // Non-monotone offsets.
        let mut bytes = base.clone();
        bytes[HEADER_LEN + 4] = 0xff;
        fix_checksum(&mut bytes);
        let err = CsrGraph::from_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("monotone") || err.to_string().contains("offset"),
            "{err}"
        );

        // Out-of-bounds endpoint.
        let targets_at = HEADER_LEN + 4 * (csr.node_count() + 1);
        let mut bytes = base.clone();
        bytes[targets_at..targets_at + 4].copy_from_slice(&200u32.to_le_bytes());
        fix_checksum(&mut bytes);
        let err = CsrGraph::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");

        // Self loop (node 0's first neighbour becomes 0).
        let mut bytes = base.clone();
        bytes[targets_at..targets_at + 4].copy_from_slice(&0u32.to_le_bytes());
        fix_checksum(&mut bytes);
        let err = CsrGraph::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("self loop"), "{err}");

        // Asymmetry: node 0 lists node 3 (a non-neighbour on the 6-cycle)
        // without the reverse arc.
        let mut bytes = base.clone();
        bytes[targets_at..targets_at + 4].copy_from_slice(&3u32.to_le_bytes());
        fix_checksum(&mut bytes);
        let err = CsrGraph::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("asymmetric"), "{err}");

        // Corrupt component label.
        let labels_at = targets_at + 4 * 2 * csr.edge_count();
        let mut bytes = base.clone();
        bytes[labels_at] ^= 1;
        fix_checksum(&mut bytes);
        let err = CsrGraph::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("component"), "{err}");
    }

    #[test]
    fn identifier_corruption_changes_the_decoded_table_but_stays_valid_structure() {
        // Identifiers carry no structural invariant; flipping one behind a
        // fixed checksum decodes to a *different* valid snapshot. The
        // checksum is what protects them in transit.
        let csr = generators::cycle(4).unwrap().freeze();
        let mut bytes = csr.to_bytes();
        let id_at = bytes.len() - 8 * csr.node_count();
        bytes[id_at] ^= 1;
        fix_checksum(&mut bytes);
        let decoded = CsrGraph::from_bytes(&bytes).unwrap();
        assert_ne!(decoded.identifier(0), csr.identifier(0));
        assert_eq!(decoded.offsets(), csr.offsets());
    }

    #[test]
    fn empty_graph_round_trips() {
        let csr = Graph::new().freeze();
        let bytes = csr.to_bytes();
        assert_eq!(bytes.len(), HEADER_LEN + 4);
        let decoded = CsrGraph::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.node_count(), 0);
        assert_eq!(decoded, csr);
    }

    /// Fresh per-test scratch directory under the OS temp dir; unique across
    /// concurrently running test processes and tests within one process.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("avglocal-snapshot-{tag}-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_round_trip_is_bit_identical() {
        let dir = scratch_dir("roundtrip");
        for (i, g) in sample_graphs().into_iter().enumerate() {
            let csr = g.freeze();
            let path = dir.join(format!("gen-{i}.snap"));
            csr.write_to_path(&path).unwrap();
            let decoded = CsrGraph::read_from_path(&path).unwrap();
            assert_eq!(decoded, csr);
            assert_eq!(decoded.to_bytes(), csr.to_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_leaves_no_temp_file_behind() {
        let dir = scratch_dir("tmpfile");
        let path = dir.join("g.snap");
        generators::cycle(5).unwrap().freeze().write_to_path(&path).unwrap();
        let listing: Vec<_> =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().file_name()).collect();
        assert_eq!(listing, vec![std::ffi::OsString::from("g.snap")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        // Overwriting an existing snapshot goes through the same temp+rename
        // path, so the old generation is never visible half-replaced.
        let dir = scratch_dir("rewrite");
        let path = dir.join("g.snap");
        let first = generators::cycle(5).unwrap().freeze();
        let second = generators::grid(3, 4).unwrap().freeze();
        first.write_to_path(&path).unwrap();
        second.write_to_path(&path).unwrap();
        assert_eq!(CsrGraph::read_from_path(&path).unwrap(), second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_snapshot_io_not_corrupt() {
        let dir = scratch_dir("missing");
        let err = CsrGraph::read_from_path(dir.join("nope.snap")).unwrap_err();
        assert!(matches!(err, GraphError::SnapshotIo { .. }), "{err}");
        assert!(err.to_string().contains("nope.snap"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_on_disk_is_typed_corruption() {
        // Simulate a crash mid-write that somehow reached the final name
        // (e.g. a pre-atomic-rename writer): every prefix of the valid bytes
        // is rejected with CorruptSnapshot, never a panic.
        let dir = scratch_dir("torn");
        let csr = generators::grid(3, 3).unwrap().freeze();
        let bytes = csr.to_bytes();
        let path = dir.join("torn.snap");
        for len in [0, 7, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..len]).unwrap();
            let err = CsrGraph::read_from_path(&path).unwrap_err();
            assert!(matches!(err, GraphError::CorruptSnapshot { .. }), "len {len}: {err}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_into_missing_directory_is_snapshot_io() {
        let dir = scratch_dir("nodir");
        let err = generators::cycle(4)
            .unwrap()
            .freeze()
            .write_to_path(dir.join("sub/does/not/exist.snap"))
            .unwrap_err();
        assert!(matches!(err, GraphError::SnapshotIo { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decoded_snapshot_is_usable_like_a_frozen_one() {
        let g = generators::grid(4, 4).unwrap();
        let csr = g.freeze();
        let decoded = CsrGraph::from_bytes(&csr.to_bytes()).unwrap();
        for v in 0..csr.node_count() as u32 {
            assert_eq!(decoded.neighbors(v), csr.neighbors(v));
            assert_eq!(decoded.degree(v), csr.degree(v));
            assert_eq!(decoded.identifier(v), csr.identifier(v));
        }
        assert_eq!(decoded.edges().count(), csr.edge_count());
        assert!(decoded.is_connected());
    }
}
