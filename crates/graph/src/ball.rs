//! Radius-`r` balls: the information a LOCAL node gathers in `r` rounds.
//!
//! The second view of the LOCAL model used throughout the paper is that a node
//! collects the ball of radius `r` centred on itself and outputs a function of
//! that ball. [`Ball`] materialises exactly that information: the nodes within
//! distance `r`, their identifiers, their distances from the centre, and the
//! subgraph they induce. The executor in `avglocal-runtime` hands balls of
//! increasing radius to ball-view algorithms.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::{Graph, Identifier, NodeId};

/// The ball of radius `r` around a centre node.
///
/// A ball is a *snapshot of local knowledge*: everything a node can have
/// learnt after `r` communication rounds in the LOCAL model (with unbounded
/// message sizes). It contains the identifiers and adjacency of every node at
/// distance at most `r` from the centre, and knows whether growing the radius
/// further could reveal anything new ([`Ball::is_saturated`]).
///
/// # Examples
///
/// ```
/// use avglocal_graph::{generators, ball::extract_ball, NodeId};
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let cycle = generators::cycle(8)?;
/// let ball = extract_ball(&cycle, NodeId::new(0), 2);
/// assert_eq!(ball.radius(), 2);
/// assert_eq!(ball.node_count(), 5); // centre + 2 on each side
/// assert!(!ball.is_saturated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ball {
    center: NodeId,
    radius: usize,
    /// Host-graph ids of the ball's nodes, in BFS (distance, discovery) order.
    members: Vec<NodeId>,
    /// Distance from the centre for each member, parallel to `members`.
    distances: Vec<usize>,
    /// Host id -> position in `members`.
    index_of: HashMap<NodeId, usize>,
    /// Identifier of each member, parallel to `members`.
    identifiers: Vec<Identifier>,
    /// Edges of the induced subgraph, as pairs of positions into `members`.
    edges: Vec<(usize, usize)>,
    /// True when every member has all of its neighbours inside the ball, i.e.
    /// the ball already covers the whole connected component of the centre.
    saturated: bool,
}

impl Ball {
    /// Assembles a ball from pre-computed parts; used by
    /// [`crate::BallGrower`] to materialise snapshots that are
    /// field-for-field identical to [`extract_ball`]'s output.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        center: NodeId,
        radius: usize,
        members: Vec<NodeId>,
        distances: Vec<usize>,
        index_of: HashMap<NodeId, usize>,
        identifiers: Vec<Identifier>,
        edges: Vec<(usize, usize)>,
        saturated: bool,
    ) -> Self {
        Ball { center, radius, members, distances, index_of, identifiers, edges, saturated }
    }

    /// The centre node (host-graph id).
    #[must_use]
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The radius the ball was extracted at.
    #[must_use]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of nodes inside the ball (the centre counts).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// Number of edges of the induced subgraph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Identifier of the centre node.
    #[must_use]
    pub fn center_identifier(&self) -> Identifier {
        self.identifiers[0]
    }

    /// Host-graph ids of the nodes in the ball, in (distance, discovery) order.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Identifiers of the nodes in the ball, parallel to [`Ball::members`].
    #[must_use]
    pub fn identifiers(&self) -> &[Identifier] {
        &self.identifiers
    }

    /// Returns `true` when `node` lies inside the ball.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.index_of.contains_key(&node)
    }

    /// Distance from the centre to `node`, if `node` is inside the ball.
    #[must_use]
    pub fn distance_to(&self, node: NodeId) -> Option<usize> {
        self.index_of.get(&node).map(|&i| self.distances[i])
    }

    /// Identifier of `node`, if `node` is inside the ball.
    #[must_use]
    pub fn identifier_of(&self, node: NodeId) -> Option<Identifier> {
        self.index_of.get(&node).map(|&i| self.identifiers[i])
    }

    /// Largest identifier inside the ball.
    #[must_use]
    pub fn max_identifier(&self) -> Identifier {
        *self.identifiers.iter().max().expect("a ball always contains its centre")
    }

    /// Returns `true` when the centre's identifier is the strict maximum of
    /// the identifiers visible in the ball.
    #[must_use]
    pub fn center_has_max_identifier(&self) -> bool {
        let c = self.center_identifier();
        self.identifiers.iter().all(|&id| id <= c)
    }

    /// Host ids of the nodes at exactly distance `d` from the centre.
    #[must_use]
    pub fn nodes_at_distance(&self, d: usize) -> Vec<NodeId> {
        self.members
            .iter()
            .zip(&self.distances)
            .filter_map(|(&v, &dist)| (dist == d).then_some(v))
            .collect()
    }

    /// Returns `true` when the ball already covers the centre's entire
    /// connected component, so that growing the radius reveals nothing new.
    ///
    /// In the paper's algorithm for the largest-ID problem this is the "has
    /// seen all the cycle" stopping condition.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Materialises the induced subgraph of the ball as a standalone
    /// [`Graph`], preserving identifiers. The centre becomes node 0.
    #[must_use]
    pub fn to_subgraph(&self) -> Graph {
        let mut g = Graph::with_capacity(self.members.len());
        for id in &self.identifiers {
            g.add_node(*id);
        }
        for &(a, b) in &self.edges {
            g.add_edge(NodeId::new(a), NodeId::new(b)).expect("ball edges are simple and in range");
        }
        g
    }
}

/// Extracts the ball of radius `radius` around `center` in `graph`.
///
/// # Panics
///
/// Panics if `center` is not a node of `graph`.
#[must_use]
pub fn extract_ball(graph: &Graph, center: NodeId, radius: usize) -> Ball {
    assert!(graph.contains_node(center), "ball centre must be in the graph");
    let mut members = Vec::new();
    let mut distances = Vec::new();
    let mut index_of = HashMap::new();
    let mut queue = VecDeque::new();

    index_of.insert(center, 0);
    members.push(center);
    distances.push(0);
    queue.push_back(center);

    while let Some(u) = queue.pop_front() {
        let du = distances[index_of[&u]];
        if du == radius {
            continue;
        }
        for &v in graph.neighbors(u) {
            if let std::collections::hash_map::Entry::Vacant(entry) = index_of.entry(v) {
                entry.insert(members.len());
                members.push(v);
                distances.push(du + 1);
                queue.push_back(v);
            }
        }
    }

    let identifiers = members.iter().map(|&v| graph.identifier(v)).collect();

    // Induced edges, and saturation: a ball is saturated when no member has a
    // neighbour outside of it.
    let mut edges = Vec::new();
    let mut saturated = true;
    for (i, &u) in members.iter().enumerate() {
        for &v in graph.neighbors(u) {
            match index_of.get(&v) {
                Some(&j) => {
                    if i < j {
                        edges.push((i, j));
                    }
                }
                None => saturated = false,
            }
        }
    }

    Ball { center, radius, members, distances, index_of, identifiers, edges, saturated }
}

/// Walks away from `center` starting with `first_step`, never backtracking,
/// for at most `len` steps, and returns the nodes visited (excluding
/// `center`).
///
/// On paths and cycles this enumerates one of the two "arms" a node sees when
/// it grows its ball, which is the natural way to express the paper's
/// largest-ID and colouring algorithms. The walk stops early if it reaches a
/// node of degree 1 (an endpoint) or wraps back to `center`.
///
/// # Panics
///
/// Panics if `first_step` is not a neighbour of `center`, or if the walk
/// reaches a node of degree greater than 2 (the direction would be ambiguous).
#[must_use]
pub fn arm(graph: &Graph, center: NodeId, first_step: NodeId, len: usize) -> Vec<NodeId> {
    assert!(
        graph.neighbors(center).contains(&first_step),
        "first_step must be a neighbour of center"
    );
    let mut out = Vec::with_capacity(len);
    if len == 0 {
        return out;
    }
    let mut prev = center;
    let mut current = first_step;
    for _ in 0..len {
        out.push(current);
        let nbrs = graph.neighbors(current);
        assert!(nbrs.len() <= 2, "arm walks are only defined on nodes of degree at most 2");
        let next = nbrs.iter().copied().find(|&v| v != prev);
        match next {
            Some(v) if v != center => {
                prev = current;
                current = v;
            }
            _ => break, // endpoint reached, or wrapped around the cycle
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ball_radius_zero_is_just_the_center() {
        let g = generators::cycle(6).unwrap();
        let b = extract_ball(&g, NodeId::new(2), 0);
        assert_eq!(b.node_count(), 1);
        assert_eq!(b.center(), NodeId::new(2));
        assert_eq!(b.center_identifier(), g.identifier(NodeId::new(2)));
        assert_eq!(b.edge_count(), 0);
        assert!(!b.is_saturated());
    }

    #[test]
    fn ball_growth_on_cycle() {
        let g = generators::cycle(10).unwrap();
        for r in 0..=4 {
            let b = extract_ball(&g, NodeId::new(0), r);
            assert_eq!(b.node_count(), 2 * r + 1);
            assert_eq!(b.radius(), r);
            assert!(!b.is_saturated());
        }
        let b = extract_ball(&g, NodeId::new(0), 5);
        assert_eq!(b.node_count(), 10);
        assert!(b.is_saturated());
    }

    #[test]
    fn saturation_beyond_diameter() {
        let g = generators::cycle(7).unwrap();
        let b = extract_ball(&g, NodeId::new(3), 100);
        assert_eq!(b.node_count(), 7);
        assert!(b.is_saturated());
    }

    #[test]
    fn distances_and_membership() {
        let g = generators::path(6).unwrap();
        let b = extract_ball(&g, NodeId::new(2), 2);
        assert_eq!(b.distance_to(NodeId::new(2)), Some(0));
        assert_eq!(b.distance_to(NodeId::new(0)), Some(2));
        assert_eq!(b.distance_to(NodeId::new(4)), Some(2));
        assert_eq!(b.distance_to(NodeId::new(5)), None);
        assert!(b.contains(NodeId::new(1)));
        assert!(!b.contains(NodeId::new(5)));
        assert_eq!(b.nodes_at_distance(2).len(), 2);
        assert_eq!(b.nodes_at_distance(0), vec![NodeId::new(2)]);
    }

    #[test]
    fn identifiers_and_maxima() {
        let g = generators::cycle(8).unwrap();
        let b = extract_ball(&g, NodeId::new(7), 1);
        // Node 7 has the largest default identifier (7) and sees 6 and 0.
        assert!(b.center_has_max_identifier());
        assert_eq!(b.max_identifier(), Identifier::new(7));
        assert_eq!(b.identifier_of(NodeId::new(0)), Some(Identifier::new(0)));
        assert_eq!(b.identifier_of(NodeId::new(3)), None);

        let b0 = extract_ball(&g, NodeId::new(0), 1);
        assert!(!b0.center_has_max_identifier());
    }

    #[test]
    fn induced_subgraph_preserves_structure() {
        let g = generators::cycle(9).unwrap();
        let b = extract_ball(&g, NodeId::new(4), 2);
        let sub = b.to_subgraph();
        assert_eq!(sub.node_count(), 5);
        assert_eq!(sub.edge_count(), 4); // a path of 5 nodes
        assert_eq!(sub.identifier(NodeId::new(0)), g.identifier(NodeId::new(4)));
        assert!(crate::traversal::is_connected(&sub));
    }

    #[test]
    fn whole_graph_ball_subgraph_equals_graph_size() {
        let g = generators::complete(5).unwrap();
        let b = extract_ball(&g, NodeId::new(0), 1);
        assert!(b.is_saturated());
        let sub = b.to_subgraph();
        assert_eq!(sub.node_count(), 5);
        assert_eq!(sub.edge_count(), 10);
    }

    #[test]
    fn arm_walk_on_cycle() {
        let g = generators::cycle(6).unwrap();
        let nbrs = g.neighbors(NodeId::new(0)).to_vec();
        let a = arm(&g, NodeId::new(0), nbrs[0], 3);
        assert_eq!(a.len(), 3);
        // Walking the other way gives disjoint interior nodes (for len < n/2).
        let b = arm(&g, NodeId::new(0), nbrs[1], 2);
        assert!(a.iter().all(|v| !b.contains(v)));
    }

    #[test]
    fn arm_stops_at_path_endpoint() {
        let g = generators::path(5).unwrap();
        let a = arm(&g, NodeId::new(3), NodeId::new(4), 10);
        assert_eq!(a, vec![NodeId::new(4)]);
        let b = arm(&g, NodeId::new(3), NodeId::new(2), 10);
        assert_eq!(b, vec![NodeId::new(2), NodeId::new(1), NodeId::new(0)]);
    }

    #[test]
    fn arm_wraps_and_stops_on_small_cycle() {
        let g = generators::cycle(4).unwrap();
        let nbrs = g.neighbors(NodeId::new(0)).to_vec();
        let a = arm(&g, NodeId::new(0), nbrs[0], 10);
        // From a 4-cycle, walking one way visits the 3 other nodes then stops.
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn arm_len_zero_is_empty() {
        let g = generators::cycle(5).unwrap();
        let nbrs = g.neighbors(NodeId::new(1)).to_vec();
        assert!(arm(&g, NodeId::new(1), nbrs[0], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "first_step must be a neighbour")]
    fn arm_rejects_non_neighbour() {
        let g = generators::cycle(6).unwrap();
        let _ = arm(&g, NodeId::new(0), NodeId::new(3), 2);
    }

    #[test]
    #[should_panic(expected = "ball centre must be in the graph")]
    fn ball_rejects_missing_center() {
        let g = Graph::new();
        let _ = extract_ball(&g, NodeId::new(0), 1);
    }
}
