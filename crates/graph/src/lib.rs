//! # avglocal-graph
//!
//! Graph substrate for the `avglocal` LOCAL-model reproduction of
//! *"Brief Announcement: Average Complexity for the LOCAL Model"*
//! (Feuilloley, PODC 2015).
//!
//! The crate provides everything the simulator needs to know about the
//! network *topology* and the *identifier assignment*, which the paper treats
//! as two independent adversarial choices:
//!
//! * [`Graph`] — undirected simple graphs whose nodes carry [`Identifier`]s;
//! * [`generators`] — cycles, paths and the other families used in
//!   experiments;
//! * [`Topology`] — named graph families (cycle, path, tree, grid, torus,
//!   `G(n, p)`, preferential attachment, power-law configuration) that the
//!   experiment sweeps are parameterised by;
//! * [`Permutation`] / [`IdAssignment`] — the adversary's choice of how
//!   identifiers are laid out on the nodes;
//! * [`ball`] — radius-`r` balls, the unit of knowledge in the LOCAL model;
//! * [`CsrGraph`] / [`BallGrower`] — the frozen flat adjacency snapshot and
//!   the incremental ball engine the executors' hot paths run on;
//! * [`snapshot`] — the versioned binary form of a [`CsrGraph`]
//!   ([`CsrGraph::to_bytes`] / [`CsrGraph::from_bytes`]) with a validating
//!   decoder that treats its input as untrusted;
//! * [`traversal`] / [`metrics`] — centralized graph algorithms used for
//!   verification and reporting;
//! * [`PortNumbering`] — the local names a node uses for its incident edges.
//!
//! # Example
//!
//! ```
//! use avglocal_graph::{generators, ball::extract_ball, IdAssignment, NodeId};
//!
//! # fn main() -> Result<(), avglocal_graph::GraphError> {
//! // The paper's setting: a cycle with adversarially permuted identifiers.
//! let mut ring = generators::cycle(16)?;
//! IdAssignment::Shuffled { seed: 1 }.apply(&mut ring)?;
//!
//! // What node 0 knows after 3 rounds.
//! let ball = extract_ball(&ring, NodeId::new(0), 3);
//! assert_eq!(ball.node_count(), 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assignment;
pub mod ball;
mod builder;
pub mod components;
pub mod csr;
mod error;
pub mod generators;
mod graph;
pub mod grower;
mod ids;
pub mod io;
pub mod metrics;
mod permutation;
mod ports;
pub mod snapshot;
pub mod topology;
pub mod traversal;

pub use assignment::IdAssignment;
pub use ball::{arm, extract_ball, Ball};
pub use builder::GraphBuilder;
pub use components::{ComponentLabels, ComponentMode};
pub use csr::CsrGraph;
pub use error::{GraphError, Result};
pub use graph::Graph;
pub use grower::{BallGrower, GrowerScratch};
pub use ids::{Identifier, NodeId};
pub use metrics::{degree_histogram, summarize, GraphSummary};
pub use permutation::Permutation;
pub use ports::PortNumbering;
pub use topology::{derive_seed, Topology};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// A permutation composed with its inverse is the identity.
        #[test]
        fn permutation_inverse_round_trip(seed in 0u64..1000, n in 1usize..64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = Permutation::random(n, &mut rng);
            prop_assert!(p.compose(&p.inverse()).is_identity());
            prop_assert!(p.inverse().compose(&p).is_identity());
        }

        /// Balls grow monotonically with the radius and saturate at the
        /// component size.
        #[test]
        fn ball_growth_is_monotone(n in 3usize..40, center in 0usize..40, r in 0usize..25) {
            let center = center % n;
            let g = generators::cycle(n).unwrap();
            let b1 = extract_ball(&g, NodeId::new(center), r);
            let b2 = extract_ball(&g, NodeId::new(center), r + 1);
            prop_assert!(b2.node_count() >= b1.node_count());
            prop_assert!(b1.node_count() <= n);
            if b1.is_saturated() {
                prop_assert_eq!(b1.node_count(), n);
            }
        }

        /// On a cycle, the ball of radius r has exactly min(2r+1, n) nodes.
        #[test]
        fn cycle_ball_size_formula(n in 3usize..60, r in 0usize..40) {
            let g = generators::cycle(n).unwrap();
            let b = extract_ball(&g, NodeId::new(0), r);
            prop_assert_eq!(b.node_count(), (2 * r + 1).min(n));
        }

        /// Identifier assignments always produce distinct identifiers.
        #[test]
        fn assignments_keep_identifiers_unique(n in 3usize..50, seed in 0u64..500) {
            let mut g = generators::cycle(n).unwrap();
            IdAssignment::Shuffled { seed }.apply(&mut g).unwrap();
            prop_assert!(g.has_unique_identifiers());
        }

        /// BFS distances on the cycle match the circular distance formula.
        #[test]
        fn cycle_distances_match_formula(n in 3usize..50, a in 0usize..50, b in 0usize..50) {
            let a = a % n;
            let b = b % n;
            let g = generators::cycle(n).unwrap();
            let d = traversal::distance(&g, NodeId::new(a), NodeId::new(b)).unwrap();
            let linear = a.abs_diff(b);
            prop_assert_eq!(d, linear.min(n - linear));
        }
    }
}
