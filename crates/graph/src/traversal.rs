//! Breadth-first traversal, distances, diameter and connectivity.
//!
//! These are centralized (simulator-side) graph algorithms. They are used to
//! extract balls, to verify algorithm outputs, and to compute graph metrics
//! for reports; distributed algorithms never call them directly.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Result of a breadth-first search from a single source.
///
/// Distances are measured in hops; unreachable nodes have distance `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    source: NodeId,
    distances: Vec<Option<usize>>,
    parents: Vec<Option<NodeId>>,
    order: Vec<NodeId>,
}

impl BfsResult {
    /// The source node of the search.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance in hops from the source to `node`, or `None` if unreachable.
    #[must_use]
    pub fn distance(&self, node: NodeId) -> Option<usize> {
        self.distances.get(node.index()).copied().flatten()
    }

    /// BFS parent of `node`, or `None` for the source and unreachable nodes.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parents.get(node.index()).copied().flatten()
    }

    /// Nodes in the order they were discovered (the source comes first).
    #[must_use]
    pub fn visit_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Largest finite distance from the source (its eccentricity within its
    /// connected component).
    #[must_use]
    pub fn eccentricity(&self) -> usize {
        self.distances.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Number of nodes reachable from the source (including the source).
    #[must_use]
    pub fn reachable_count(&self) -> usize {
        self.distances.iter().flatten().count()
    }

    /// Reconstructs a shortest path from the source to `target`, inclusive.
    ///
    /// Returns `None` when `target` is unreachable.
    #[must_use]
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut current = target;
        while let Some(p) = self.parent(current) {
            path.push(p);
            current = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs a breadth-first search from `source`.
///
/// # Panics
///
/// Panics if `source` is not a node of `graph`.
#[must_use]
pub fn bfs(graph: &Graph, source: NodeId) -> BfsResult {
    assert!(graph.contains_node(source), "bfs source must be in the graph");
    let n = graph.node_count();
    let mut distances = vec![None; n];
    let mut parents = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    distances[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = distances[u.index()].expect("queued nodes have a distance");
        for &v in graph.neighbors(u) {
            if distances[v.index()].is_none() {
                distances[v.index()] = Some(du + 1);
                parents[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    BfsResult { source, distances, parents, order }
}

/// Hop distance between `u` and `v`, or `None` if they are disconnected.
#[must_use]
pub fn distance(graph: &Graph, u: NodeId, v: NodeId) -> Option<usize> {
    bfs(graph, u).distance(v)
}

/// Eccentricity of `node`: the largest distance to any reachable node.
#[must_use]
pub fn eccentricity(graph: &Graph, node: NodeId) -> usize {
    bfs(graph, node).eccentricity()
}

/// Diameter of the graph: the largest eccentricity over all nodes.
///
/// Returns `None` for the empty graph or a disconnected graph, because hop
/// distances between different components are infinite.
#[must_use]
pub fn diameter(graph: &Graph) -> Option<usize> {
    if graph.is_empty() || !is_connected(graph) {
        return None;
    }
    graph.nodes().map(|v| eccentricity(graph, v)).max()
}

/// Radius of the graph: the smallest eccentricity over all nodes.
///
/// Returns `None` for the empty graph or a disconnected graph.
#[must_use]
pub fn graph_radius(graph: &Graph) -> Option<usize> {
    if graph.is_empty() || !is_connected(graph) {
        return None;
    }
    graph.nodes().map(|v| eccentricity(graph, v)).min()
}

/// Returns `true` when every node is reachable from every other node.
///
/// The empty graph is considered connected.
#[must_use]
pub fn is_connected(graph: &Graph) -> bool {
    match graph.nodes().next() {
        None => true,
        Some(first) => bfs(graph, first).reachable_count() == graph.node_count(),
    }
}

/// Partitions the nodes into connected components.
///
/// Components are listed in order of their smallest node index, and nodes
/// within a component are listed in BFS discovery order.
#[must_use]
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for v in graph.nodes() {
        if seen[v.index()] {
            continue;
        }
        let result = bfs(graph, v);
        let component: Vec<NodeId> = result.visit_order().to_vec();
        for u in &component {
            seen[u.index()] = true;
        }
        components.push(component);
    }
    components
}

/// Checks whether the graph is bipartite (2-colourable).
///
/// The empty graph is bipartite.
#[must_use]
pub fn is_bipartite(graph: &Graph) -> bool {
    let n = graph.node_count();
    let mut colour: Vec<Option<bool>> = vec![None; n];
    for start in graph.nodes() {
        if colour[start.index()].is_some() {
            continue;
        }
        colour[start.index()] = Some(false);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let cu = colour[u.index()].expect("queued nodes are coloured");
            for &v in graph.neighbors(u) {
                match colour[v.index()] {
                    None => {
                        colour[v.index()] = Some(!cu);
                        queue.push_back(v);
                    }
                    Some(cv) if cv == cu => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

/// Length of a shortest cycle (the girth), or `None` for a forest.
///
/// This runs a BFS from every node and is intended for the moderate graph
/// sizes used in tests and experiments.
#[must_use]
pub fn girth(graph: &Graph) -> Option<usize> {
    let mut best: Option<usize> = None;
    for source in graph.nodes() {
        let n = graph.node_count();
        let mut dist = vec![usize::MAX; n];
        let mut parent = vec![None; n];
        dist[source.index()] = 0;
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    parent[v.index()] = Some(u);
                    queue.push_back(v);
                } else if parent[u.index()] != Some(v) {
                    // Found a cycle through `source` (or at least a closed walk
                    // bounding one); its length is at most the sum below.
                    let cycle_len = dist[u.index()] + dist[v.index()] + 1;
                    best = Some(best.map_or(cycle_len, |b| b.min(cycle_len)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Identifier;

    fn path4() -> Graph {
        generators::path(4).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path4();
        let r = bfs(&g, NodeId::new(0));
        assert_eq!(r.distance(NodeId::new(0)), Some(0));
        assert_eq!(r.distance(NodeId::new(3)), Some(3));
        assert_eq!(r.eccentricity(), 3);
        assert_eq!(r.reachable_count(), 4);
        assert_eq!(r.source(), NodeId::new(0));
    }

    #[test]
    fn bfs_path_reconstruction() {
        let g = path4();
        let r = bfs(&g, NodeId::new(0));
        let p = r.path_to(NodeId::new(3)).unwrap();
        assert_eq!(p, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(r.parent(NodeId::new(0)), None);
    }

    #[test]
    fn bfs_visit_order_starts_at_source() {
        let g = path4();
        let r = bfs(&g, NodeId::new(2));
        assert_eq!(r.visit_order()[0], NodeId::new(2));
        assert_eq!(r.visit_order().len(), 4);
    }

    #[test]
    fn distance_between_nodes() {
        let g = generators::cycle(6).unwrap();
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(3)), Some(3));
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(5)), Some(1));
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let mut g = Graph::new();
        let a = g.add_node(Identifier::new(0));
        let b = g.add_node(Identifier::new(1));
        assert_eq!(distance(&g, a, b), None);
        let r = bfs(&g, a);
        assert_eq!(r.path_to(b), None);
        assert_eq!(r.reachable_count(), 1);
    }

    #[test]
    fn diameter_and_radius_of_cycle() {
        let g = generators::cycle(8).unwrap();
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(graph_radius(&g), Some(4));
    }

    #[test]
    fn diameter_and_radius_of_path() {
        let g = path4();
        assert_eq!(diameter(&g), Some(3));
        assert_eq!(graph_radius(&g), Some(2));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let mut g = Graph::new();
        g.add_node(Identifier::new(0));
        g.add_node(Identifier::new(1));
        assert_eq!(diameter(&g), None);
        assert_eq!(graph_radius(&g), None);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&Graph::new()));
        assert!(is_connected(&generators::cycle(5).unwrap()));
        let mut g = Graph::new();
        g.add_node(Identifier::new(0));
        g.add_node(Identifier::new(1));
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_are_partitioned() {
        let mut g = Graph::new();
        let a = g.add_node(Identifier::new(0));
        let b = g.add_node(Identifier::new(1));
        let c = g.add_node(Identifier::new(2));
        g.add_edge(a, b).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![a, b]);
        assert_eq!(comps[1], vec![c]);
    }

    #[test]
    fn bipartiteness() {
        assert!(is_bipartite(&generators::cycle(6).unwrap()));
        assert!(!is_bipartite(&generators::cycle(5).unwrap()));
        assert!(is_bipartite(&path4()));
        assert!(is_bipartite(&Graph::new()));
    }

    #[test]
    fn girth_of_cycles_and_forests() {
        assert_eq!(girth(&generators::cycle(5).unwrap()), Some(5));
        assert_eq!(girth(&generators::cycle(9).unwrap()), Some(9));
        assert_eq!(girth(&path4()), None);
        assert_eq!(girth(&generators::complete(4).unwrap()), Some(3));
    }

    #[test]
    #[should_panic(expected = "bfs source must be in the graph")]
    fn bfs_panics_on_missing_source() {
        let g = Graph::new();
        let _ = bfs(&g, NodeId::new(0));
    }
}
