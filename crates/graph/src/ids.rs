//! Node indices and distributed identifiers.
//!
//! The LOCAL model distinguishes between the *index* of a node inside a
//! particular in-memory graph (a dense `0..n` handle, [`NodeId`]) and the
//! *identifier* the node carries in the distributed computation
//! ([`Identifier`]). Identifiers are globally unique but otherwise arbitrary;
//! algorithms may only compare them or read their bits, never assume they are
//! dense or bounded by `n`.

use std::fmt;

/// Dense index of a node inside a [`crate::Graph`].
///
/// `NodeId` is a simulator-level handle: it is assigned by the graph in
/// insertion order and is *not* visible to distributed algorithms (they only
/// see [`Identifier`]s). It is `Copy` and cheap to pass around.
///
/// # Examples
///
/// ```
/// use avglocal_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Globally unique identifier carried by a node in the LOCAL model.
///
/// Identifiers are the only symmetry-breaking information available to a
/// deterministic LOCAL algorithm. The paper's worst-case-over-permutations
/// measure quantifies over all ways of assigning identifiers to nodes, so the
/// library keeps them separate from [`NodeId`].
///
/// # Examples
///
/// ```
/// use avglocal_graph::Identifier;
/// let a = Identifier::new(17);
/// let b = Identifier::new(42);
/// assert!(a < b);
/// assert_eq!(a.value(), 17);
/// assert_eq!(b.bit(1), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Identifier(u64);

impl Identifier {
    /// Creates an identifier from its numeric value.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Identifier(value)
    }

    /// Returns the numeric value of the identifier.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the `i`-th bit (0 = least significant) of the identifier.
    ///
    /// Cole–Vishkin style colour-reduction algorithms operate on the bits of
    /// the identifiers, so this accessor is part of the public API.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[must_use]
    pub const fn bit(self, i: u32) -> u64 {
        assert!(i < 64, "bit index out of range");
        (self.0 >> i) & 1
    }

    /// Number of bits needed to write the identifier (at least 1).
    #[must_use]
    pub const fn bit_length(self) -> u32 {
        if self.0 == 0 {
            1
        } else {
            64 - self.0.leading_zeros()
        }
    }

    /// Index of the lowest bit in which `self` and `other` differ, if any.
    ///
    /// Returns `None` when the identifiers are equal. This is the elementary
    /// step of the Cole–Vishkin deterministic coin tossing technique.
    #[must_use]
    pub const fn lowest_differing_bit(self, other: Identifier) -> Option<u32> {
        let x = self.0 ^ other.0;
        if x == 0 {
            None
        } else {
            Some(x.trailing_zeros())
        }
    }
}

impl From<u64> for Identifier {
    fn from(value: u64) -> Self {
        Identifier(value)
    }
}

impl From<Identifier> for u64 {
    fn from(id: Identifier) -> Self {
        id.0
    }
}

impl fmt::Display for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Binary for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for Identifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let v = NodeId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(usize::from(v), 7);
        assert_eq!(NodeId::from(7usize), v);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(NodeId::new(123).to_string(), "v123");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn identifier_round_trip() {
        let id = Identifier::new(99);
        assert_eq!(id.value(), 99);
        assert_eq!(u64::from(id), 99);
        assert_eq!(Identifier::from(99u64), id);
    }

    #[test]
    fn identifier_display_and_radix_formats() {
        let id = Identifier::new(10);
        assert_eq!(id.to_string(), "#10");
        assert_eq!(format!("{id:b}"), "1010");
        assert_eq!(format!("{id:x}"), "a");
        assert_eq!(format!("{id:X}"), "A");
        assert_eq!(format!("{id:o}"), "12");
    }

    #[test]
    fn identifier_bits() {
        let id = Identifier::new(0b1011);
        assert_eq!(id.bit(0), 1);
        assert_eq!(id.bit(1), 1);
        assert_eq!(id.bit(2), 0);
        assert_eq!(id.bit(3), 1);
        assert_eq!(id.bit(10), 0);
    }

    #[test]
    fn identifier_bit_length() {
        assert_eq!(Identifier::new(0).bit_length(), 1);
        assert_eq!(Identifier::new(1).bit_length(), 1);
        assert_eq!(Identifier::new(2).bit_length(), 2);
        assert_eq!(Identifier::new(255).bit_length(), 8);
        assert_eq!(Identifier::new(256).bit_length(), 9);
        assert_eq!(Identifier::new(u64::MAX).bit_length(), 64);
    }

    #[test]
    fn lowest_differing_bit_identifies_first_difference() {
        let a = Identifier::new(0b1010);
        let b = Identifier::new(0b1000);
        assert_eq!(a.lowest_differing_bit(b), Some(1));
        assert_eq!(b.lowest_differing_bit(a), Some(1));
        assert_eq!(a.lowest_differing_bit(a), None);
    }

    #[test]
    fn ordering_matches_value_ordering() {
        assert!(Identifier::new(3) < Identifier::new(4));
        assert!(Identifier::new(100) > Identifier::new(4));
    }

    #[test]
    #[should_panic(expected = "bit index out of range")]
    fn bit_out_of_range_panics() {
        let _ = Identifier::new(1).bit(64);
    }
}
