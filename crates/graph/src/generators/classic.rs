//! Classic named graphs: complete graphs, complete bipartite graphs, Petersen.

use crate::error::{GraphError, Result};
use crate::Graph;

/// The complete graph `K_n` on `n >= 1` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n == 0`.
pub fn complete(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "a complete graph needs at least 1 node".to_string(),
        });
    }
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(nodes[i], nodes[j])?;
        }
    }
    Ok(g)
}

/// The complete bipartite graph `K_{a,b}`.
///
/// The first `a` nodes form one side, the remaining `b` nodes the other.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph> {
    if a == 0 || b == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("complete bipartite graph needs both sides non-empty, got ({a}, {b})"),
        });
    }
    let mut g = Graph::with_capacity(a + b);
    let nodes = g.add_nodes_with_default_ids(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(nodes[i], nodes[a + j])?;
        }
    }
    Ok(g)
}

/// The Petersen graph: 10 nodes, 15 edges, 3-regular, girth 5.
///
/// A standard stress-test topology for colouring algorithms beyond the ring.
#[must_use]
pub fn petersen() -> Graph {
    let mut g = Graph::with_capacity(10);
    let nodes = g.add_nodes_with_default_ids(10);
    // Outer 5-cycle.
    for i in 0..5 {
        g.add_edge(nodes[i], nodes[(i + 1) % 5]).expect("outer cycle edges are simple");
    }
    // Inner pentagram.
    for i in 0..5 {
        g.add_edge(nodes[5 + i], nodes[5 + (i + 2) % 5]).expect("inner star edges are simple");
    }
    // Spokes.
    for i in 0..5 {
        g.add_edge(nodes[i], nodes[5 + i]).expect("spoke edges are simple");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), Some(5));
        assert_eq!(traversal::diameter(&g), Some(1));
    }

    #[test]
    fn complete_single_node() {
        let g = complete(1).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn complete_rejects_zero() {
        assert!(complete(0).is_err());
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(traversal::is_bipartite(&g));
        assert_eq!(traversal::diameter(&g), Some(2));
    }

    #[test]
    fn complete_bipartite_rejects_empty_side() {
        assert!(complete_bipartite(0, 3).is_err());
        assert!(complete_bipartite(3, 0).is_err());
    }

    #[test]
    fn petersen_properties() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), Some(3));
        assert_eq!(g.max_degree(), Some(3));
        assert_eq!(traversal::diameter(&g), Some(2));
        assert_eq!(traversal::girth(&g), Some(5));
        assert!(!traversal::is_bipartite(&g));
    }
}
