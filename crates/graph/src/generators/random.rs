//! Random graph models.
//!
//! All random generators take an explicit `&mut impl Rng` so experiments can
//! be reproduced from a seed.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{GraphError, Result};
use crate::Graph;

/// The Erdős–Rényi model `G(n, p)`: each of the `n(n-1)/2` potential edges is
/// present independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n == 0` or `p` is
/// not a probability in `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "G(n, p) needs at least 1 node".to_string(),
        });
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(nodes[i], nodes[j])?;
            }
        }
    }
    Ok(g)
}

/// The Erdős–Rényi model `G(n, m)`: exactly `m` edges chosen uniformly at
/// random among all `n(n-1)/2` potential edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n == 0`, when the
/// potential-edge count `n(n-1)/2` overflows `usize`, or when `m` exceeds
/// the number of possible edges.
pub fn gnm_random<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "G(n, m) needs at least 1 node".to_string(),
        });
    }
    // `n` is caller-controlled: the potential-edge count must not overflow
    // (which would panic in debug builds and mis-size the draw in release).
    let max_edges = n.checked_mul(n - 1).map(|product| product / 2).ok_or_else(|| {
        GraphError::InvalidGeneratorParameter {
            reason: format!("G(n, m) with n={n} has more potential edges than usize can count"),
        }
    })?;
    if m > max_edges {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("G(n, m) with n={n} supports at most {max_edges} edges, got {m}"),
        });
    }
    let mut all_edges: Vec<(usize, usize)> = Vec::with_capacity(max_edges);
    for i in 0..n {
        for j in (i + 1)..n {
            all_edges.push((i, j));
        }
    }
    all_edges.shuffle(rng);
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for &(i, j) in all_edges.iter().take(m) {
        g.add_edge(nodes[i], nodes[j])?;
    }
    Ok(g)
}

/// A uniformly random labelled tree on `n` nodes, generated from a random
/// Prüfer sequence.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "a random tree needs at least 1 node".to_string(),
        });
    }
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    if n == 1 {
        return Ok(g);
    }
    if n == 2 {
        g.add_edge(nodes[0], nodes[1])?;
        return Ok(g);
    }
    // Prüfer decoding.
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    for &p in &prufer {
        let leaf = (0..n).find(|&v| degree[v] == 1).expect("a leaf always exists");
        edges.push((leaf, p));
        degree[leaf] -= 1;
        degree[p] -= 1;
    }
    let remaining: Vec<usize> = (0..n).filter(|&v| degree[v] == 1).collect();
    assert_eq!(remaining.len(), 2, "Prüfer decoding ends with exactly two leaves");
    edges.push((remaining[0], remaining[1]));
    for (u, v) in edges {
        g.add_edge(nodes[u], nodes[v])?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_is_reproducible_from_seed() {
        let a = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(erdos_renyi(0, 0.5, &mut rng).is_err());
        assert!(erdos_renyi(5, -0.1, &mut rng).is_err());
        assert!(erdos_renyi(5, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(5, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm_random(12, 20, &mut rng).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn gnm_rejects_too_many_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(gnm_random(4, 7, &mut rng).is_err());
        assert!(gnm_random(0, 0, &mut rng).is_err());
    }

    #[test]
    fn gnm_rejects_overflowing_node_count_instead_of_panicking() {
        let mut rng = StdRng::seed_from_u64(3);
        let err = gnm_random(usize::MAX, 1, &mut rng).unwrap_err();
        assert!(err.to_string().contains("potential edges"));
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 10, 50] {
            let g = random_tree(n, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(traversal::is_connected(&g));
        }
    }

    #[test]
    fn random_tree_is_reproducible() {
        let a = random_tree(30, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = random_tree(30, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_tree_rejects_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_tree(0, &mut rng).is_err());
    }
}
