//! Hub-weighted random families: preferential attachment and the power-law
//! configuration model.
//!
//! Every connected family the sweep harness supported before this module
//! (cycle, path, tree, grid, torus, supercritical `G(n, p)`) is near-regular,
//! so the node- and edge-averaged measures are glued together by the
//! bounded-degree sandwich (see `avglocal::measure`). The families here are
//! the opposite regime: a heavy-tailed degree sequence concentrates most
//! *edges* on a few *hubs*, which is exactly the structure under which the
//! two averaged measures can detach while the graph stays connected.
//!
//! * [`preferential_attachment`] — the Barabási–Albert growth process:
//!   always connected, exact `n`, degree tail `P(d) ~ d^-3`;
//! * [`power_law_configuration`] — the erased configuration model over a
//!   deterministic Zipf-like degree sequence `d_i ~ (n/i)^(1/(gamma-1))`:
//!   heavier hubs than preferential attachment (the exponent is tunable),
//!   but connectivity is not guaranteed, so the topology layer either
//!   redraws or hands the instance to the per-component machinery.
//!
//! Both generators take an explicit `&mut impl Rng` and are deterministic
//! given the seed, like every other random family in this crate.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{GraphError, Result};
use crate::Graph;

/// The Barabási–Albert preferential-attachment graph: a seed clique on
/// `m + 1` nodes, then each new node attaches to `m` **distinct** existing
/// nodes chosen with probability proportional to their current degree.
///
/// The construction is always connected and realises `n` exactly (when
/// `n <= m + 1` it degenerates to the complete graph on `n` nodes). The
/// degree distribution has the classical `P(d) ~ d^-3` tail, so old nodes
/// become hubs holding a disproportionate share of the edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n == 0` or
/// `m == 0`.
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "preferential attachment needs at least 1 node".to_string(),
        });
    }
    if m == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "preferential attachment needs m >= 1 edges per new node".to_string(),
        });
    }
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    // Seed: the complete graph on the first min(n, m + 1) nodes (saturating,
    // so an absurd caller-supplied `m` degenerates to the complete graph on
    // `n` nodes instead of overflowing).
    let seed_size = n.min(m.saturating_add(1));
    for i in 0..seed_size {
        for j in (i + 1)..seed_size {
            g.add_edge(nodes[i], nodes[j])?;
        }
    }
    // `targets` lists every node once per incident edge endpoint, so a
    // uniform draw from it is exactly degree-proportional attachment. The
    // capacity bound uses saturating arithmetic: `m` is caller-controlled
    // and only ever contributes `m.min(v) < n` edges per attached node, so
    // an absurd `m` must not overflow the reservation.
    let attach_per_node = m.min(n);
    let capacity = seed_size
        .saturating_mul(seed_size.saturating_sub(1))
        .saturating_add(2usize.saturating_mul(attach_per_node).saturating_mul(n - seed_size));
    let mut targets: Vec<usize> = Vec::with_capacity(capacity);
    for i in 0..seed_size {
        for _ in 0..seed_size.saturating_sub(1) {
            targets.push(i);
        }
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(attach_per_node);
    for v in seed_size..n {
        chosen.clear();
        // Draw m distinct targets by rejection; terminates because at least
        // m distinct nodes already exist (v >= seed_size >= m when n > m).
        while chosen.len() < m.min(v) {
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            g.add_edge(nodes[v], nodes[t])?;
            targets.push(v);
            targets.push(t);
        }
    }
    Ok(g)
}

/// The deterministic Zipf-like degree sequence of the power-law
/// configuration model: `d_i = round((n / (i + 1))^(1 / (gamma - 1)))`
/// clamped to `[1, n - 1]`, with the total bumped to an even sum.
///
/// Only the stub *pairing* consumes randomness; the sequence itself is a
/// function of `(n, gamma)`, so the hub structure of the family is stable
/// across seeds.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n == 0` or
/// `gamma <= 1` (the Zipf exponent `1 / (gamma - 1)` must be positive and
/// finite).
pub fn power_law_degrees(n: usize, gamma: f64) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "a power-law degree sequence needs at least 1 node".to_string(),
        });
    }
    if !gamma.is_finite() || gamma <= 1.0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("power-law exponent gamma must be finite and > 1, got {gamma}"),
        });
    }
    if n == 1 {
        return Ok(vec![0]);
    }
    let exponent = 1.0 / (gamma - 1.0);
    let cap = n - 1;
    let mut degrees: Vec<usize> = (0..n)
        .map(|i| {
            let raw = (n as f64 / (i + 1) as f64).powf(exponent).round() as usize;
            raw.clamp(1, cap)
        })
        .collect();
    if degrees.iter().sum::<usize>() % 2 != 0 {
        // Bump the last (smallest-degree) node, so the hub head of the
        // sequence is untouched.
        degrees[n - 1] += 1;
    }
    Ok(degrees)
}

/// The erased configuration model over the [`power_law_degrees`] sequence:
/// one stub per degree unit, a uniformly random perfect matching of the
/// stubs, and self-loops / duplicate edges silently dropped ("erased").
///
/// Erasure makes the realised degrees a lower bound on the requested
/// sequence (hubs lose the most — their stubs collide most often), keeps
/// the graph simple, and can leave the instance disconnected; the topology
/// layer either redraws until connected or runs it through the
/// per-component machinery.
///
/// # Errors
///
/// Same parameter errors as [`power_law_degrees`].
pub fn power_law_configuration<R: Rng + ?Sized>(
    n: usize,
    gamma: f64,
    rng: &mut R,
) -> Result<Graph> {
    let degrees = power_law_degrees(n, gamma)?;
    let mut stubs: Vec<usize> = Vec::with_capacity(degrees.iter().sum());
    for (i, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            stubs.push(i);
        }
    }
    stubs.shuffle(rng);
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u != v && !g.contains_edge(nodes[u], nodes[v]) {
            g.add_edge(nodes[u], nodes[v])?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preferential_attachment_survives_absurd_m_without_overflow() {
        // m = usize::MAX degenerates to the complete graph on n nodes; the
        // seed-size and capacity arithmetic must saturate, not panic.
        let g = preferential_attachment(5, usize::MAX, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn preferential_attachment_is_connected_and_exact() {
        for &(n, m) in &[(1usize, 1usize), (2, 1), (5, 2), (40, 1), (40, 2), (40, 3), (3, 5)] {
            let g = preferential_attachment(n, m, &mut StdRng::seed_from_u64(7)).unwrap();
            assert_eq!(g.node_count(), n, "n={n}, m={m}");
            assert!(traversal::is_connected(&g), "n={n}, m={m}");
            assert!(g.has_unique_identifiers());
        }
    }

    #[test]
    fn preferential_attachment_edge_count_is_exact() {
        // Seed clique C(s, 2) with s = min(n, m + 1), then m edges per later
        // node (capped by the nodes existing at its arrival, which never
        // binds once n > m).
        for &(n, m) in &[(30usize, 1usize), (30, 2), (30, 4)] {
            let g = preferential_attachment(n, m, &mut StdRng::seed_from_u64(3)).unwrap();
            let s = n.min(m + 1);
            assert_eq!(g.edge_count(), s * (s - 1) / 2 + (n - s) * m);
        }
    }

    #[test]
    fn preferential_attachment_is_reproducible() {
        let a = preferential_attachment(64, 2, &mut StdRng::seed_from_u64(11)).unwrap();
        let b = preferential_attachment(64, 2, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(a, b);
        let c = preferential_attachment(64, 2, &mut StdRng::seed_from_u64(12)).unwrap();
        assert_ne!(a, c, "different seeds should draw different attachments");
    }

    #[test]
    fn preferential_attachment_grows_hubs() {
        // The degree tail is heavy: the maximum degree must clearly exceed
        // the mean (2m), i.e. the family is genuinely hub-weighted.
        let g = preferential_attachment(256, 2, &mut StdRng::seed_from_u64(5)).unwrap();
        let max_degree = g.max_degree().unwrap();
        assert!(max_degree >= 12, "expected a hub, max degree {max_degree}");
    }

    #[test]
    fn preferential_attachment_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(preferential_attachment(0, 1, &mut rng).is_err());
        assert!(preferential_attachment(5, 0, &mut rng).is_err());
    }

    #[test]
    fn power_law_degrees_are_a_zipf_head_with_even_sum() {
        let d = power_law_degrees(64, 2.5).unwrap();
        assert_eq!(d.len(), 64);
        assert_eq!(d.iter().sum::<usize>() % 2, 0);
        // Monotone non-increasing head, clamped to [1, n - 1].
        assert!(d.windows(2).take(32).all(|w| w[0] >= w[1]));
        assert!(d.iter().all(|&x| (1..64).contains(&x)));
        assert!(d[0] > 4 * d[32], "the head must dominate the tail");
    }

    #[test]
    fn power_law_degrees_reject_bad_parameters() {
        assert!(power_law_degrees(0, 2.5).is_err());
        assert!(power_law_degrees(8, 1.0).is_err());
        assert!(power_law_degrees(8, 0.5).is_err());
        assert!(power_law_degrees(8, f64::NAN).is_err());
        assert_eq!(power_law_degrees(1, 2.5).unwrap(), vec![0]);
    }

    #[test]
    fn power_law_configuration_is_simple_and_bounded_by_the_sequence() {
        let degrees = power_law_degrees(96, 2.2).unwrap();
        let g = power_law_configuration(96, 2.2, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g.node_count(), 96);
        // Erasure only removes stubs: realised degree <= requested degree.
        for v in g.nodes() {
            assert!(g.degree(v) <= degrees[v.index()], "node {v}");
        }
        // Simplicity is structural (Graph rejects loops and duplicates), but
        // check the counts line up anyway.
        assert!(2 * g.edge_count() <= degrees.iter().sum::<usize>());
    }

    #[test]
    fn power_law_configuration_is_reproducible() {
        let a = power_law_configuration(48, 2.0, &mut StdRng::seed_from_u64(21)).unwrap();
        let b = power_law_configuration(48, 2.0, &mut StdRng::seed_from_u64(21)).unwrap();
        assert_eq!(a, b);
    }
}
