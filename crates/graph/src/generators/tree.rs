//! Trees: stars, balanced trees and caterpillars.

use crate::error::{GraphError, Result};
use crate::Graph;

/// The star `K_{1,n-1}` on `n >= 2` nodes; node 0 is the centre.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n < 2`.
pub fn star(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("a star needs at least 2 nodes, got {n}"),
        });
    }
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for leaf in &nodes[1..] {
        g.add_edge(nodes[0], *leaf)?;
    }
    Ok(g)
}

/// The complete `arity`-ary tree of the given `depth`.
///
/// Depth 0 is a single root. Every internal node has exactly `arity`
/// children. Nodes are numbered in breadth-first order, so the root is 0.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `arity == 0`, or
/// when the tree would exceed one million nodes.
pub fn balanced_tree(arity: usize, depth: usize) -> Result<Graph> {
    if arity == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "balanced tree arity must be positive".to_string(),
        });
    }
    // Compute the node count, guarding against absurd sizes.
    let mut count: usize = 1;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level.saturating_mul(arity);
        count = count.saturating_add(level);
        if count > 1_000_000 {
            return Err(GraphError::InvalidGeneratorParameter {
                reason: format!("balanced tree with arity {arity} and depth {depth} is too large"),
            });
        }
    }
    let mut g = Graph::with_capacity(count);
    let nodes = g.add_nodes_with_default_ids(count);
    // Children of node i (breadth-first numbering): arity*i + 1 ..= arity*i + arity.
    for i in 0..count {
        for c in 1..=arity {
            let child = arity * i + c;
            if child < count {
                g.add_edge(nodes[i], nodes[child])?;
            }
        }
    }
    Ok(g)
}

/// The heap-shaped complete binary tree on exactly `n` nodes: node `i` has
/// children `2i + 1` and `2i + 2` (when they exist), so every level is full
/// except possibly the last, which fills left to right.
///
/// Unlike [`balanced_tree`], which only realises sizes of the form
/// `2^(d+1) - 1`, this shape exists for every positive `n` — which is what
/// the topology-parameterised sweeps need.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `n == 0`.
pub fn complete_binary_tree(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "a complete binary tree needs at least 1 node".to_string(),
        });
    }
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                g.add_edge(nodes[i], nodes[child])?;
            }
        }
    }
    Ok(g)
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves attached.
///
/// Caterpillars are useful stress tests for average-radius measures because a
/// constant fraction of the nodes (the legs) can often decide very early.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Result<Graph> {
    if spine == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: "caterpillar needs a non-empty spine".to_string(),
        });
    }
    let n = spine + spine * legs;
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for i in 1..spine {
        g.add_edge(nodes[i - 1], nodes[i])?;
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = spine + s * legs + l;
            g.add_edge(nodes[s], nodes[leaf])?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn star_counts() {
        let g = star(7).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), Some(6));
        assert_eq!(g.min_degree(), Some(1));
        assert_eq!(traversal::diameter(&g), Some(2));
    }

    #[test]
    fn star_rejects_tiny() {
        assert!(star(1).is_err());
        assert!(star(0).is_err());
    }

    #[test]
    fn balanced_binary_tree() {
        let g = balanced_tree(2, 3).unwrap();
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(traversal::is_connected(&g));
        assert!(traversal::is_bipartite(&g));
        assert_eq!(traversal::diameter(&g), Some(6));
    }

    #[test]
    fn balanced_tree_depth_zero_is_single_node() {
        let g = balanced_tree(3, 0).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn balanced_tree_ternary() {
        let g = balanced_tree(3, 2).unwrap();
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn balanced_tree_rejects_bad_parameters() {
        assert!(balanced_tree(0, 3).is_err());
        assert!(balanced_tree(10, 10).is_err()); // too large
    }

    #[test]
    fn complete_binary_tree_exists_for_every_size() {
        for n in 1usize..40 {
            let g = complete_binary_tree(n).unwrap();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n - 1);
            assert!(traversal::is_connected(&g));
        }
    }

    #[test]
    fn complete_binary_tree_matches_balanced_tree_on_full_sizes() {
        // 2^(d+1) - 1 nodes: the heap shape IS the complete binary tree of
        // depth d, edge for edge.
        assert_eq!(complete_binary_tree(15).unwrap(), balanced_tree(2, 3).unwrap());
        assert_eq!(complete_binary_tree(7).unwrap(), balanced_tree(2, 2).unwrap());
    }

    #[test]
    fn complete_binary_tree_rejects_zero() {
        assert!(complete_binary_tree(0).is_err());
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(4, 3).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 15);
        assert!(traversal::is_connected(&g));
        assert_eq!(traversal::diameter(&g), Some(5));
    }

    #[test]
    fn caterpillar_without_legs_is_a_path() {
        let g = caterpillar(5, 0).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), Some(2));
    }

    #[test]
    fn caterpillar_rejects_empty_spine() {
        assert!(caterpillar(0, 3).is_err());
    }
}
