//! Two-dimensional grids, tori, and hypercubes.

use crate::error::{GraphError, Result};
use crate::Graph;

/// The `w x h` grid graph: nodes are lattice points, edges join horizontal and
/// vertical neighbours. Node `(x, y)` has index `y * w + x`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when either dimension is
/// zero.
pub fn grid(w: usize, h: usize) -> Result<Graph> {
    if w == 0 || h == 0 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("grid dimensions must be positive, got {w}x{h}"),
        });
    }
    let mut g = Graph::with_capacity(w * h);
    let nodes = g.add_nodes_with_default_ids(w * h);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                g.add_edge(nodes[i], nodes[i + 1])?;
            }
            if y + 1 < h {
                g.add_edge(nodes[i], nodes[i + w])?;
            }
        }
    }
    Ok(g)
}

/// The `w x h` torus: a grid with wrap-around edges in both dimensions.
///
/// Both dimensions must be at least 3 so the graph stays simple (no parallel
/// edges from wrapping a dimension of length 2).
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when a dimension is
/// smaller than 3.
pub fn torus(w: usize, h: usize) -> Result<Graph> {
    if w < 3 || h < 3 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("torus dimensions must be at least 3, got {w}x{h}"),
        });
    }
    let mut g = Graph::with_capacity(w * h);
    let nodes = g.add_nodes_with_default_ids(w * h);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let right = y * w + (x + 1) % w;
            let down = ((y + 1) % h) * w + x;
            if !g.contains_edge(nodes[i], nodes[right]) {
                g.add_edge(nodes[i], nodes[right])?;
            }
            if !g.contains_edge(nodes[i], nodes[down]) {
                g.add_edge(nodes[i], nodes[down])?;
            }
        }
    }
    Ok(g)
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
///
/// Node indices are interpreted as bit strings; two nodes are adjacent when
/// their indices differ in exactly one bit.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorParameter`] when `d == 0` or
/// `d > 20` (the latter only to bound memory).
pub fn hypercube(d: u32) -> Result<Graph> {
    if d == 0 || d > 20 {
        return Err(GraphError::InvalidGeneratorParameter {
            reason: format!("hypercube dimension must be in [1, 20], got {d}"),
        });
    }
    let n = 1usize << d;
    let mut g = Graph::with_capacity(n);
    let nodes = g.add_nodes_with_default_ids(n);
    for i in 0..n {
        for b in 0..d {
            let j = i ^ (1 << b);
            if i < j {
                g.add_edge(nodes[i], nodes[j])?;
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn grid_counts() {
        let g = grid(4, 3).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 4 * 2 + 3 * 3); // horizontal + vertical
        assert!(traversal::is_connected(&g));
        assert!(traversal::is_bipartite(&g));
        assert_eq!(traversal::diameter(&g), Some(3 + 2));
    }

    #[test]
    fn grid_single_row_is_a_path() {
        let g = grid(5, 1).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), Some(2));
    }

    #[test]
    fn grid_rejects_zero_dimension() {
        assert!(grid(0, 3).is_err());
        assert!(grid(3, 0).is_err());
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5).unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.min_degree(), Some(4));
        assert_eq!(g.max_degree(), Some(4));
        assert_eq!(g.edge_count(), 40);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn torus_rejects_small_dimensions() {
        assert!(torus(2, 5).is_err());
        assert!(torus(5, 2).is_err());
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.min_degree(), Some(4));
        assert_eq!(traversal::diameter(&g), Some(4));
        assert!(traversal::is_bipartite(&g));
    }

    #[test]
    fn hypercube_dimension_one_is_an_edge() {
        let g = hypercube(1).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn hypercube_rejects_bad_dimension() {
        assert!(hypercube(0).is_err());
        assert!(hypercube(21).is_err());
    }
}
