//! Graph family generators.
//!
//! Every generator returns a [`crate::Graph`] whose node `i` carries the
//! default identifier `i`; experiments re-assign identifiers afterwards with
//! [`crate::assignment::IdAssignment`] so that the worst-case-over-permutations
//! measure of the paper can be explored independently of the topology.
//!
//! The cycle (ring) is the topology the paper studies; the other families are
//! provided so that the "further work" direction of the paper — general graphs
//! — can be explored with the same tooling.

mod classic;
mod cycle;
mod grid;
mod hub;
mod random;
mod tree;

pub use classic::{complete, complete_bipartite, petersen};
pub use cycle::{cycle, cycle_neighbors, path, ring_lattice};
pub use grid::{grid, hypercube, torus};
pub use hub::{power_law_configuration, power_law_degrees, preferential_attachment};
pub use random::{erdos_renyi, gnm_random, random_tree};
pub use tree::{balanced_tree, caterpillar, complete_binary_tree, star};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn all_generators_have_unique_default_identifiers() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let graphs = vec![
            preferential_attachment(12, 2, &mut StdRng::seed_from_u64(1)).unwrap(),
            cycle(5).unwrap(),
            path(5).unwrap(),
            ring_lattice(8, 4).unwrap(),
            complete(5).unwrap(),
            complete_bipartite(3, 4).unwrap(),
            petersen(),
            grid(3, 4).unwrap(),
            torus(3, 4).unwrap(),
            hypercube(3).unwrap(),
            star(6).unwrap(),
            balanced_tree(2, 3).unwrap(),
            complete_binary_tree(10).unwrap(),
            caterpillar(4, 2).unwrap(),
        ];
        for g in graphs {
            assert!(g.has_unique_identifiers());
            assert!(traversal::is_connected(&g));
        }
    }
}
