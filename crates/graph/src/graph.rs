//! Undirected simple graphs with per-node identifiers.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::{Identifier, NodeId};

/// An undirected simple graph whose nodes carry distributed [`Identifier`]s.
///
/// This is the substrate every LOCAL-model execution runs on. Nodes are stored
/// densely and addressed by [`NodeId`]; each node holds the identifier it
/// exposes to the distributed algorithm. Neighbour lists are kept in insertion
/// order, which doubles as the port numbering used by the runtime.
///
/// # Examples
///
/// ```
/// use avglocal_graph::{Graph, Identifier};
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node(Identifier::new(10));
/// let b = g.add_node(Identifier::new(20));
/// g.add_edge(a, b)?;
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.degree(a), 1);
/// assert!(g.contains_edge(a, b));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    identifiers: Vec<Identifier>,
    by_identifier: HashMap<Identifier, NodeId>,
    /// Normalised `(min, max)` endpoint pairs, mirroring `adjacency`. Makes
    /// [`Graph::contains_edge`] (and thus the duplicate check of
    /// [`Graph::add_edge`]) `O(1)`, so bulk generators are not `O(n·Δ²)`.
    edge_set: HashSet<(NodeId, NodeId)>,
    edge_count: usize,
}

/// Normalises an undirected edge to its `(min, max)` key.
fn edge_key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with room for `nodes` nodes.
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        Graph {
            adjacency: Vec::with_capacity(nodes),
            identifiers: Vec::with_capacity(nodes),
            by_identifier: HashMap::with_capacity(nodes),
            edge_set: HashSet::new(),
            edge_count: 0,
        }
    }

    /// Adds a node carrying `identifier` and returns its [`NodeId`].
    ///
    /// Identifiers are not required to be unique at insertion time (the
    /// builder validates uniqueness when it matters); the reverse lookup map
    /// keeps the *first* node that used a given identifier.
    pub fn add_node(&mut self, identifier: Identifier) -> NodeId {
        let id = NodeId::new(self.adjacency.len());
        self.adjacency.push(Vec::new());
        self.identifiers.push(identifier);
        self.by_identifier.entry(identifier).or_insert(id);
        id
    }

    /// Adds `count` nodes with identifiers `0..count` and returns their ids.
    pub fn add_nodes_with_default_ids(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|i| self.add_node(Identifier::new(i as u64))).collect()
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not
    /// exist, [`GraphError::SelfLoop`] when `u == v`, and
    /// [`GraphError::DuplicateEdge`] when the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if !self.edge_set.insert(edge_key(u, v)) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        self.adjacency[u.index()].push(v);
        self.adjacency[v.index()].push(u);
        self.edge_count += 1;
        Ok(())
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Returns `true` if `node` is a valid node id of this graph.
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.adjacency.len()
    }

    /// Returns `true` if the undirected edge `(u, v)` exists. `O(1)`.
    #[must_use]
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_set.contains(&edge_key(u, v))
    }

    /// Freezes the adjacency into a flat [`CsrGraph`] snapshot for
    /// traversal-heavy workloads; see [`crate::csr`].
    ///
    /// Large graphs are frozen in parallel on the worker pool (parallel
    /// degree count, prefix-sum offsets, race-free parallel scatter, parallel
    /// connected-components labelling); small graphs take the serial path.
    /// Both produce bit-identical snapshots.
    ///
    /// # Panics
    ///
    /// Panics when the graph has `u32::MAX` nodes or more, or when its
    /// directed edge count exceeds `u32::MAX`.
    #[must_use]
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_graph(self)
    }

    /// Freezes with the serial reference build, regardless of size — the
    /// baseline [`Graph::freeze_parallel`] is benchmarked and
    /// property-tested against.
    ///
    /// # Panics
    ///
    /// Same limits as [`Graph::freeze`].
    #[must_use]
    pub fn freeze_serial(&self) -> CsrGraph {
        CsrGraph::from_graph_serial(self)
    }

    /// Freezes with the parallel build, regardless of size.
    ///
    /// # Panics
    ///
    /// Same limits as [`Graph::freeze`].
    #[must_use]
    pub fn freeze_parallel(&self) -> CsrGraph {
        CsrGraph::from_graph_parallel(self)
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Neighbours of `node`, in port order (insertion order of the edges).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Identifier carried by `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the graph.
    #[must_use]
    pub fn identifier(&self, node: NodeId) -> Identifier {
        self.identifiers[node.index()]
    }

    /// Replaces the identifier of `node`, keeping the reverse index coherent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node` does not exist.
    pub fn set_identifier(&mut self, node: NodeId, identifier: Identifier) -> Result<()> {
        self.check_node(node)?;
        let old = self.identifiers[node.index()];
        if old == identifier {
            return Ok(());
        }
        if self.by_identifier.get(&old) == Some(&node) {
            self.by_identifier.remove(&old);
        }
        self.identifiers[node.index()] = identifier;
        self.by_identifier.entry(identifier).or_insert(node);
        Ok(())
    }

    /// Looks up the node carrying `identifier`, if any.
    #[must_use]
    pub fn node_by_identifier(&self, identifier: Identifier) -> Option<NodeId> {
        self.by_identifier.get(&identifier).copied()
    }

    /// Returns the node with the largest identifier, if the graph is non-empty.
    #[must_use]
    pub fn max_identifier_node(&self) -> Option<NodeId> {
        self.identifiers.iter().enumerate().max_by_key(|(_, id)| **id).map(|(i, _)| NodeId::new(i))
    }

    /// Iterator over all node ids, in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(NodeId::new)
    }

    /// Iterator over all identifiers, in node-index order.
    pub fn identifiers(&self) -> impl ExactSizeIterator<Item = Identifier> + '_ {
        self.identifiers.iter().copied()
    }

    /// Iterator over all undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = NodeId::new(u);
            nbrs.iter().copied().filter_map(move |v| (u < v).then_some((u, v)))
        })
    }

    /// Minimum degree over all nodes, or `None` for the empty graph.
    #[must_use]
    pub fn min_degree(&self) -> Option<usize> {
        self.adjacency.iter().map(Vec::len).min()
    }

    /// Maximum degree over all nodes, or `None` for the empty graph.
    #[must_use]
    pub fn max_degree(&self) -> Option<usize> {
        self.adjacency.iter().map(Vec::len).max()
    }

    /// Rebuilds the identifier reverse-lookup index.
    ///
    /// Needed after bulk identifier rewrites performed through
    /// [`Graph::set_all_identifiers`].
    fn rebuild_identifier_index(&mut self) {
        self.by_identifier.clear();
        for (i, id) in self.identifiers.iter().enumerate() {
            self.by_identifier.entry(*id).or_insert(NodeId::new(i));
        }
    }

    /// Replaces the identifiers of every node at once.
    ///
    /// `identifiers[i]` becomes the identifier of the node with index `i`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::AssignmentLengthMismatch`] if the slice length
    /// differs from the node count, and [`GraphError::DuplicateIdentifier`] if
    /// two nodes would share an identifier.
    pub fn set_all_identifiers(&mut self, identifiers: &[Identifier]) -> Result<()> {
        if identifiers.len() != self.node_count() {
            return Err(GraphError::AssignmentLengthMismatch {
                provided: identifiers.len(),
                expected: self.node_count(),
            });
        }
        let mut seen = HashMap::with_capacity(identifiers.len());
        for id in identifiers {
            if seen.insert(*id, ()).is_some() {
                return Err(GraphError::DuplicateIdentifier { identifier: id.value() });
            }
        }
        self.identifiers.clear();
        self.identifiers.extend_from_slice(identifiers);
        self.rebuild_identifier_index();
        Ok(())
    }

    /// Checks that every node carries a distinct identifier.
    #[must_use]
    pub fn has_unique_identifiers(&self) -> bool {
        let mut seen = HashMap::with_capacity(self.identifiers.len());
        self.identifiers.iter().all(|id| seen.insert(*id, ()).is_none())
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds { node, node_count: self.node_count() })
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph({} nodes, {} edges)", self.node_count(), self.edge_count())?;
        for v in self.nodes() {
            let nbrs: Vec<String> = self.neighbors(v).iter().map(|u| u.to_string()).collect();
            writeln!(f, "  {v} [{}] -> {}", self.identifier(v), nbrs.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node(Identifier::new(1));
        let b = g.add_node(Identifier::new(2));
        let c = g.add_node(Identifier::new(3));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_degree(), None);
        assert_eq!(g.max_degree(), None);
        assert_eq!(g.max_identifier_node(), None);
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(a), 2);
        assert!(g.contains_edge(a, b));
        assert!(g.contains_edge(b, a));
        assert!(g.contains_edge(c, a));
        assert!(!g.is_empty());
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let (mut g, a, b, _) = triangle();
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop { node: a }));
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge { u: a, v: b }));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn rejects_out_of_bounds_edges() {
        let mut g = Graph::new();
        let a = g.add_node(Identifier::new(1));
        let ghost = NodeId::new(10);
        assert!(matches!(g.add_edge(a, ghost), Err(GraphError::NodeOutOfBounds { .. })));
    }

    #[test]
    fn identifier_lookup() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.identifier(a), Identifier::new(1));
        assert_eq!(g.node_by_identifier(Identifier::new(2)), Some(b));
        assert_eq!(g.node_by_identifier(Identifier::new(99)), None);
        assert_eq!(g.max_identifier_node(), Some(c));
        assert!(g.has_unique_identifiers());
    }

    #[test]
    fn set_identifier_updates_lookup() {
        let (mut g, a, _, _) = triangle();
        g.set_identifier(a, Identifier::new(50)).unwrap();
        assert_eq!(g.identifier(a), Identifier::new(50));
        assert_eq!(g.node_by_identifier(Identifier::new(50)), Some(a));
        assert_eq!(g.node_by_identifier(Identifier::new(1)), None);
        assert_eq!(g.max_identifier_node(), Some(a));
    }

    #[test]
    fn set_identifier_out_of_bounds() {
        let mut g = Graph::new();
        assert!(matches!(
            g.set_identifier(NodeId::new(0), Identifier::new(1)),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn set_all_identifiers_validates() {
        let (mut g, a, b, c) = triangle();
        let err = g.set_all_identifiers(&[Identifier::new(5)]);
        assert!(matches!(err, Err(GraphError::AssignmentLengthMismatch { .. })));

        let err =
            g.set_all_identifiers(&[Identifier::new(5), Identifier::new(5), Identifier::new(6)]);
        assert!(matches!(err, Err(GraphError::DuplicateIdentifier { identifier: 5 })));

        g.set_all_identifiers(&[Identifier::new(30), Identifier::new(20), Identifier::new(10)])
            .unwrap();
        assert_eq!(g.identifier(a), Identifier::new(30));
        assert_eq!(g.identifier(b), Identifier::new(20));
        assert_eq!(g.identifier(c), Identifier::new(10));
        assert_eq!(g.max_identifier_node(), Some(a));
    }

    #[test]
    fn edges_reported_once() {
        let (g, _, _, _) = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn default_id_nodes() {
        let mut g = Graph::new();
        let nodes = g.add_nodes_with_default_ids(4);
        assert_eq!(nodes.len(), 4);
        assert_eq!(g.identifier(nodes[3]), Identifier::new(3));
        assert!(g.has_unique_identifiers());
    }

    #[test]
    fn degree_bounds() {
        let (g, _, _, _) = triangle();
        assert_eq!(g.min_degree(), Some(2));
        assert_eq!(g.max_degree(), Some(2));
    }

    #[test]
    fn display_contains_structure() {
        let (g, _, _, _) = triangle();
        let s = g.to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("v0"));
        assert!(s.contains("#1"));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let g = Graph::with_capacity(16);
        assert!(g.is_empty());
        assert_eq!(g, Graph::new());
    }
}
