//! Topology families for the experiment harness.
//!
//! The paper states its separation on the ring, but the follow-up line of
//! work (Feuilloley 2017, Rozhoň 2023) studies node-averaged complexity on
//! trees, grids and general graphs. A [`Topology`] names one such family and
//! knows how to materialise an instance of (close to) a requested size, so
//! the sweep layer can be parameterised by the family instead of being
//! hard-wired to cycles.
//!
//! Every family here realises a requested size `n` *exactly*: grids and tori
//! pick the most square factorisation of `n`, and the complete binary tree is
//! heap-shaped (node `i` has children `2i + 1` and `2i + 2`), so it exists
//! for every `n`. Random `G(n, p)` instances are redrawn from derived seeds
//! until they are connected — a disconnected instance would silently change
//! the semantics of "the ball saturates" from "saw the whole graph" to "saw
//! the whole component", which is a different measure; see
//! [`Topology::build`].

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::components::ComponentMode;
use crate::error::{GraphError, Result};
use crate::{generators, traversal, Graph};

/// How many independent `G(n, p)` draws [`Topology::build`] attempts before
/// giving up on connectivity.
pub const GNP_CONNECT_ATTEMPTS: u64 = 64;

/// Derives an independent stream seed from `(base, index)`.
///
/// Both inputs pass through a SplitMix64 finaliser, so adjacent bases do
/// *not* share streams: `derive_seed(0, 1)` and `derive_seed(1, 0)` are
/// unrelated, unlike the additive `base + index` scheme this replaces (where
/// base 0/index 1 and base 1/index 0 collided exactly).
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    splitmix64(splitmix64(base) ^ index)
}

/// The SplitMix64 finaliser: a cheap, high-quality 64-bit mixing function.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A named graph family the experiment harness can sweep over.
///
/// # Examples
///
/// ```
/// use avglocal_graph::Topology;
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let grid = Topology::Grid.build(12)?; // 3 x 4
/// assert_eq!(grid.node_count(), 12);
/// let tree = Topology::CompleteBinaryTree.build(10)?;
/// assert_eq!(tree.node_count(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Topology {
    /// The `n`-cycle — the paper's setting.
    Cycle,
    /// The path on `n` nodes.
    Path,
    /// The heap-shaped complete binary tree on exactly `n` nodes.
    CompleteBinaryTree,
    /// The most square `w x h` grid with `w * h == n`.
    Grid,
    /// The most square `w x h` torus with `w * h == n` (both sides `>= 3`).
    Torus,
    /// Erdős–Rényi `G(n, p)`, redrawn from seeds derived from `seed` until
    /// connected.
    Gnp {
        /// Edge probability.
        p: f64,
        /// Base seed of the family; the instance seed is derived from
        /// `(seed, n, attempt)`.
        seed: u64,
    },
    /// Barabási–Albert preferential attachment: each new node attaches to
    /// `m` distinct existing nodes with degree-proportional probability.
    /// Always connected and exact-`n` by construction — the first
    /// hub-weighted family, where a few old nodes hold a disproportionate
    /// share of the edges.
    PreferentialAttachment {
        /// Edges added per new node (`m >= 1`).
        m: usize,
        /// Base seed of the family; the instance seed is derived from
        /// `(seed, n)`.
        seed: u64,
    },
    /// The erased power-law configuration model over the deterministic
    /// Zipf-like degree sequence `d_i ~ (n / i)^(1 / (gamma - 1))`. Heavier
    /// hubs than preferential attachment, but connectivity is not
    /// guaranteed: connected builds redraw from derived seeds like `Gnp`,
    /// and the per-component mode accepts the first draw as-is.
    PowerLawConfiguration {
        /// The power-law exponent (`gamma > 1`; smaller is hub-heavier).
        gamma: f64,
        /// Base seed of the family; the instance seed is derived from
        /// `(seed, n, attempt)`.
        seed: u64,
    },
}

impl Topology {
    /// The deterministic families, in display order. `Gnp` is excluded
    /// because it needs parameters; see [`Topology::gnp_connected`].
    pub const DETERMINISTIC: [Topology; 5] = [
        Topology::Cycle,
        Topology::Path,
        Topology::CompleteBinaryTree,
        Topology::Grid,
        Topology::Torus,
    ];

    /// A `G(n, p)` family with `p = min(1, 2 ln n / n)` — comfortably above
    /// the `ln n / n` connectivity threshold, so the redraw loop in
    /// [`Topology::build`] almost always succeeds on the first attempt.
    #[must_use]
    pub fn gnp_connected(n: usize, seed: u64) -> Topology {
        let p = if n <= 1 { 1.0 } else { (2.0 * (n as f64).ln() / n as f64).min(1.0) };
        Topology::Gnp { p, seed }
    }

    /// Short machine-friendly name of the family (no parameters).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Topology::Cycle => "cycle",
            Topology::Path => "path",
            Topology::CompleteBinaryTree => "tree",
            Topology::Grid => "grid",
            Topology::Torus => "torus",
            Topology::Gnp { .. } => "gnp",
            Topology::PreferentialAttachment { .. } => "pa",
            Topology::PowerLawConfiguration { .. } => "powerlaw",
        }
    }

    /// Returns `true` for the cycle family (the only one the ring-specific
    /// algorithms run on).
    #[must_use]
    pub fn is_cycle(&self) -> bool {
        matches!(self, Topology::Cycle)
    }

    /// Builds a **connected** instance with exactly `n` nodes.
    ///
    /// Deterministic families build exactly one graph per `n`. `Gnp` draws up
    /// to [`GNP_CONNECT_ATTEMPTS`] instances from seeds derived from
    /// `(seed, n)` and returns the first connected one; the experiment layer
    /// therefore never mixes "ball saturates the component" with "ball
    /// saturates the graph".
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorParameter`] when the family has
    /// no instance of size `n` (cycles need `n >= 3`, tori need a
    /// factorisation with both sides `>= 3`, …) and [`GraphError::Disconnected`]
    /// when every attempted `G(n, p)` draw was disconnected.
    pub fn build(&self, n: usize) -> Result<Graph> {
        match self {
            Topology::Cycle => generators::cycle(n),
            Topology::Path => generators::path(n),
            Topology::CompleteBinaryTree => generators::complete_binary_tree(n),
            Topology::Grid => {
                let (w, h) = most_square_factors(n, 1).ok_or_else(|| {
                    GraphError::InvalidGeneratorParameter {
                        reason: format!("a grid needs at least 1 node, got {n}"),
                    }
                })?;
                generators::grid(w, h)
            }
            Topology::Torus => {
                let (w, h) = most_square_factors(n, 3).ok_or_else(|| {
                    GraphError::InvalidGeneratorParameter {
                        reason: format!("a torus needs n = w*h with both sides >= 3, got n = {n}"),
                    }
                })?;
                generators::torus(w, h)
            }
            Topology::Gnp { p, seed } => connected_draw(
                |attempt| gnp_draw(n, *p, *seed, attempt),
                || {
                    format!(
                        "G({n}, {p}) stayed disconnected for {GNP_CONNECT_ATTEMPTS} draws \
                         (seed {seed}); raise p towards the ln(n)/n connectivity threshold"
                    )
                },
            ),
            Topology::PreferentialAttachment { m, seed } => pa_draw(n, *m, *seed),
            Topology::PowerLawConfiguration { gamma, seed } => connected_draw(
                |attempt| power_law_draw(n, *gamma, *seed, attempt),
                || {
                    format!(
                        "the power-law configuration model (n = {n}, gamma = {gamma}) stayed \
                         disconnected for {GNP_CONNECT_ATTEMPTS} draws (seed {seed}); lower \
                         gamma for heavier hubs or study it with ComponentMode::PerComponent"
                    )
                },
            ),
        }
    }

    /// Builds a single instance without the connectivity guarantee: for
    /// `Gnp` this is the first draw whether or not it is connected, for every
    /// other family it equals [`Topology::build`].
    ///
    /// This is the build the per-component experiment mode uses (via
    /// [`Topology::build_for`]); tests also use it to construct deliberately
    /// disconnected instances.
    ///
    /// # Errors
    ///
    /// Same size errors as [`Topology::build`], minus the connectivity one.
    pub fn build_unchecked(&self, n: usize) -> Result<Graph> {
        match self {
            Topology::Gnp { p, seed } => gnp_draw(n, *p, *seed, 0),
            Topology::PowerLawConfiguration { gamma, seed } => power_law_draw(n, *gamma, *seed, 0),
            always_connected => always_connected.build(n),
        }
    }

    /// Builds an instance under the given [`ComponentMode`].
    ///
    /// [`ComponentMode::RequireConnected`] is [`Topology::build`]: random
    /// families are redrawn from derived seeds until connected, and a
    /// persistently disconnected family is a hard error.
    /// [`ComponentMode::PerComponent`] is [`Topology::build_unchecked`]: the
    /// **first** draw is used as-is — no connectivity check runs and no
    /// derived seeds are burnt on redraws, because a disconnected instance
    /// is exactly what the caller asked to study.
    ///
    /// # Errors
    ///
    /// Size errors for both modes; [`GraphError::Disconnected`] only in
    /// [`ComponentMode::RequireConnected`].
    pub fn build_for(&self, n: usize, mode: ComponentMode) -> Result<Graph> {
        match mode {
            ComponentMode::RequireConnected => self.build(n),
            ComponentMode::PerComponent => self.build_unchecked(n),
        }
    }
}

/// Runs the shared redraw-until-connected loop of the random families:
/// `draw(attempt)` produces draw number `attempt`, and a family that stays
/// disconnected for [`GNP_CONNECT_ATTEMPTS`] draws is a hard
/// [`GraphError::Disconnected`] carrying `disconnected_reason()`.
fn connected_draw(
    draw: impl Fn(u64) -> Result<Graph>,
    disconnected_reason: impl FnOnce() -> String,
) -> Result<Graph> {
    for attempt in 0..GNP_CONNECT_ATTEMPTS {
        let g = draw(attempt)?;
        if traversal::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::Disconnected { reason: disconnected_reason() })
}

/// Draw number `attempt` of the `G(n, p)` family with base `seed` — the one
/// place the per-instance seed stream is derived, shared by
/// [`Topology::build`]'s retry loop and [`Topology::build_unchecked`].
fn gnp_draw(n: usize, p: f64, seed: u64, attempt: u64) -> Result<Graph> {
    let stream = derive_seed(seed, n as u64);
    let mut rng = StdRng::seed_from_u64(derive_seed(stream, attempt));
    generators::erdos_renyi(n, p, &mut rng)
}

/// The one preferential-attachment draw per `(n, seed)`: the construction is
/// connected by design, so there is no retry stream to derive — just the
/// per-size instance seed.
fn pa_draw(n: usize, m: usize, seed: u64) -> Result<Graph> {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, n as u64));
    generators::preferential_attachment(n, m, &mut rng)
}

/// Draw number `attempt` of the power-law configuration family, mirroring
/// [`gnp_draw`]'s seed derivation.
fn power_law_draw(n: usize, gamma: f64, seed: u64, attempt: u64) -> Result<Graph> {
    let stream = derive_seed(seed, n as u64);
    let mut rng = StdRng::seed_from_u64(derive_seed(stream, attempt));
    generators::power_law_configuration(n, gamma, &mut rng)
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Gnp { p, seed } => write!(f, "gnp(p={p}, seed={seed})"),
            Topology::PreferentialAttachment { m, seed } => write!(f, "pa(m={m}, seed={seed})"),
            Topology::PowerLawConfiguration { gamma, seed } => {
                write!(f, "powerlaw(gamma={gamma}, seed={seed})")
            }
            other => f.write_str(other.key()),
        }
    }
}

/// The factorisation `n = w * h` with `min_side <= w <= h` whose sides are
/// closest together, or `None` when no such factorisation exists.
fn most_square_factors(n: usize, min_side: usize) -> Option<(usize, usize)> {
    let mut w = integer_sqrt(n);
    while w >= min_side.max(1) {
        if n.is_multiple_of(w) && n / w >= min_side {
            return Some((w, n / w));
        }
        w -= 1;
    }
    None
}

/// `floor(sqrt(n))` without floating point.
fn integer_sqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_has_no_adjacent_collisions() {
        // The additive scheme collided exactly here: base 0/trial 1 == base
        // 1/trial 0. The mixed derivation must not.
        assert_ne!(derive_seed(0, 1), derive_seed(1, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        assert_ne!(derive_seed(5, 7), derive_seed(7, 5));
        // And it stays deterministic.
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
    }

    #[test]
    fn deterministic_families_realise_exact_sizes() {
        for topology in Topology::DETERMINISTIC {
            let n = if topology == Topology::Torus { 12 } else { 10 };
            let g = topology.build(n).unwrap();
            assert_eq!(g.node_count(), n, "{topology}");
            assert!(traversal::is_connected(&g), "{topology}");
            assert!(g.has_unique_identifiers(), "{topology}");
        }
    }

    #[test]
    fn grid_factors_are_most_square() {
        assert_eq!(most_square_factors(12, 1), Some((3, 4)));
        assert_eq!(most_square_factors(16, 1), Some((4, 4)));
        assert_eq!(most_square_factors(7, 1), Some((1, 7))); // prime: degenerates to a path
        assert_eq!(most_square_factors(7, 3), None);
        assert_eq!(most_square_factors(36, 3), Some((6, 6)));
        assert_eq!(most_square_factors(0, 1), None);
    }

    #[test]
    fn torus_rejects_unfactorable_sizes() {
        assert!(Topology::Torus.build(7).is_err());
        assert!(Topology::Torus.build(10).is_err()); // 2 x 5 only
        assert_eq!(Topology::Torus.build(9).unwrap().node_count(), 9);
    }

    #[test]
    fn gnp_build_is_connected_and_deterministic() {
        let topology = Topology::gnp_connected(48, 7);
        let a = topology.build(48).unwrap();
        let b = topology.build(48).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 48);
        assert!(traversal::is_connected(&a));
    }

    #[test]
    fn disconnected_gnp_is_an_explicit_error() {
        // p = 0 on n >= 2 nodes can never be connected; the build must say
        // so instead of handing back a graph with different saturation
        // semantics.
        let err = Topology::Gnp { p: 0.0, seed: 1 }.build(8).unwrap_err();
        assert!(matches!(err, GraphError::Disconnected { .. }));
        assert!(err.to_string().contains("disconnected"));
        // The unchecked build hands the disconnected draw back for tests.
        let raw = Topology::Gnp { p: 0.0, seed: 1 }.build_unchecked(8).unwrap();
        assert_eq!(raw.edge_count(), 0);
        assert!(!traversal::is_connected(&raw));
    }

    #[test]
    fn per_component_mode_skips_the_redraw_loop() {
        // In per-component mode a subcritical G(n, p) is a supported
        // instance, not an error — and it is exactly the first draw, so no
        // derived seeds are burnt on redraws.
        let topology = Topology::Gnp { p: 0.0, seed: 1 };
        let g = topology.build_for(8, ComponentMode::PerComponent).unwrap();
        assert_eq!(g, topology.build_unchecked(8).unwrap());
        assert_eq!(g.edge_count(), 0);
        // The connected mode still redraws and still fails loudly.
        let err = topology.build_for(8, ComponentMode::RequireConnected).unwrap_err();
        assert!(matches!(err, GraphError::Disconnected { .. }));
        // Deterministic families are unaffected by the mode.
        for mode in [ComponentMode::RequireConnected, ComponentMode::PerComponent] {
            assert_eq!(
                Topology::Cycle.build_for(10, mode).unwrap(),
                Topology::Cycle.build(10).unwrap()
            );
        }
    }

    #[test]
    fn per_component_mode_matches_connected_build_on_supercritical_gnp() {
        // Above the connectivity threshold the first draw is almost surely
        // connected, so both modes hand back the same instance.
        let topology = Topology::gnp_connected(48, 7);
        assert_eq!(
            topology.build_for(48, ComponentMode::PerComponent).unwrap(),
            topology.build_for(48, ComponentMode::RequireConnected).unwrap()
        );
    }

    #[test]
    fn preferential_attachment_builds_are_connected_and_deterministic() {
        let topology = Topology::PreferentialAttachment { m: 2, seed: 5 };
        let a = topology.build(48).unwrap();
        let b = topology.build(48).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 48);
        assert!(traversal::is_connected(&a));
        // Always connected: both component modes hand back the same draw,
        // and the unchecked build is the build.
        assert_eq!(a, topology.build_unchecked(48).unwrap());
        assert_eq!(a, topology.build_for(48, ComponentMode::PerComponent).unwrap());
        // Different sizes draw from different derived streams.
        assert_eq!(topology.build(20).unwrap().node_count(), 20);
    }

    #[test]
    fn power_law_configuration_redraws_or_hands_back_the_first_draw() {
        let topology = Topology::PowerLawConfiguration { gamma: 2.0, seed: 3 };
        let raw = topology.build_unchecked(48).unwrap();
        assert_eq!(raw.node_count(), 48);
        assert_eq!(raw, topology.build_for(48, ComponentMode::PerComponent).unwrap());
        // The connected build, when it succeeds, is connected.
        if let Ok(g) = topology.build(48) {
            assert!(traversal::is_connected(&g));
            assert_eq!(g, topology.build(48).unwrap());
        }
        // gamma <= 1 is rejected with a parameter error, not a redraw loop.
        let err = Topology::PowerLawConfiguration { gamma: 1.0, seed: 3 }.build(8).unwrap_err();
        assert!(matches!(err, GraphError::InvalidGeneratorParameter { .. }));
    }

    #[test]
    fn hub_families_are_hub_weighted() {
        // Both new families must produce a maximum degree well above the
        // mean — that is the point of adding them.
        let pa = Topology::PreferentialAttachment { m: 2, seed: 7 }.build(256).unwrap();
        let mean_degree = 2.0 * pa.edge_count() as f64 / pa.node_count() as f64;
        assert!(pa.max_degree().unwrap() as f64 > 2.5 * mean_degree);
        let plc =
            Topology::PowerLawConfiguration { gamma: 2.2, seed: 7 }.build_unchecked(256).unwrap();
        let mean_degree = 2.0 * plc.edge_count() as f64 / plc.node_count() as f64;
        assert!(plc.max_degree().unwrap() as f64 > 2.5 * mean_degree);
    }

    #[test]
    fn single_node_gnp_is_trivially_connected() {
        let g = Topology::Gnp { p: 0.0, seed: 3 }.build(1).unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn display_names_families() {
        assert_eq!(Topology::Cycle.to_string(), "cycle");
        assert_eq!(Topology::CompleteBinaryTree.to_string(), "tree");
        assert_eq!(Topology::Gnp { p: 0.5, seed: 2 }.to_string(), "gnp(p=0.5, seed=2)");
        assert_eq!(
            Topology::PreferentialAttachment { m: 2, seed: 3 }.to_string(),
            "pa(m=2, seed=3)"
        );
        assert_eq!(
            Topology::PowerLawConfiguration { gamma: 2.5, seed: 4 }.to_string(),
            "powerlaw(gamma=2.5, seed=4)"
        );
        assert_eq!(Topology::PreferentialAttachment { m: 2, seed: 3 }.key(), "pa");
        assert_eq!(Topology::PowerLawConfiguration { gamma: 2.5, seed: 4 }.key(), "powerlaw");
        assert_eq!(Topology::Cycle.key(), "cycle");
        assert!(Topology::Cycle.is_cycle());
        assert!(!Topology::Grid.is_cycle());
    }

    #[test]
    fn integer_sqrt_matches_floats() {
        for n in 0usize..2000 {
            assert_eq!(integer_sqrt(n), (n as f64).sqrt().floor() as usize, "n={n}");
        }
    }
}
