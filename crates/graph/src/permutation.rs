//! Permutations of `0..n`, used to model identifier assignments.
//!
//! The paper's complexity measures quantify over the *worst permutation of the
//! identifiers*, so permutations are a first-class object: they can be
//! composed, inverted, enumerated exhaustively (for small `n`), sampled
//! uniformly, and perturbed locally (for the hill-climbing adversary in
//! `avglocal`).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{GraphError, Result};

/// A permutation of `0..n`.
///
/// `perm.get(i)` is the image of `i`. In the identifier-assignment use case,
/// node with index `i` receives identifier `perm.get(i)` (possibly shifted to
/// a different identifier universe by the caller).
///
/// # Examples
///
/// ```
/// use avglocal_graph::Permutation;
///
/// # fn main() -> Result<(), avglocal_graph::GraphError> {
/// let p = Permutation::from_vec(vec![2, 0, 1])?;
/// assert_eq!(p.get(0), 2);
/// let inv = p.inverse();
/// assert_eq!(inv.get(2), 0);
/// assert!(p.compose(&inv).is_identity());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Permutation { map: (0..n).collect() }
    }

    /// The permutation reversing `0..n` (`i -> n-1-i`).
    #[must_use]
    pub fn reversal(n: usize) -> Self {
        Permutation { map: (0..n).rev().collect() }
    }

    /// The cyclic shift `i -> (i + shift) mod n`.
    #[must_use]
    pub fn rotation(n: usize, shift: usize) -> Self {
        if n == 0 {
            return Permutation { map: Vec::new() };
        }
        Permutation { map: (0..n).map(|i| (i + shift) % n).collect() }
    }

    /// Builds a permutation from an explicit image vector.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorParameter`] if `map` is not a
    /// permutation of `0..map.len()`.
    pub fn from_vec(map: Vec<usize>) -> Result<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &x in &map {
            if x >= n || seen[x] {
                return Err(GraphError::InvalidGeneratorParameter {
                    reason: format!("vector is not a permutation of 0..{n}"),
                });
            }
            seen[x] = true;
        }
        Ok(Permutation { map })
    }

    /// Samples a permutation of `0..n` uniformly at random.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut map: Vec<usize> = (0..n).collect();
        map.shuffle(rng);
        Permutation { map }
    }

    /// The size `n` of the permuted set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` for the (unique) permutation of the empty set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Image of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The underlying image vector.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// Returns `true` when this is the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &x)| i == x)
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0; self.map.len()];
        for (i, &x) in self.map.iter().enumerate() {
            inv[x] = i;
        }
        Permutation { map: inv }
    }

    /// Composition `self ∘ other`: `(self ∘ other)(i) = self(other(i))`.
    ///
    /// # Panics
    ///
    /// Panics if the two permutations have different sizes.
    #[must_use]
    pub fn compose(&self, other: &Permutation) -> Self {
        assert_eq!(self.len(), other.len(), "composed permutations must have equal size");
        Permutation { map: other.map.iter().map(|&i| self.map[i]).collect() }
    }

    /// Applies the permutation to a slice: output position `i` receives
    /// `values[self.get(i)]`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    #[must_use]
    pub fn apply<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "applied slice must match permutation size");
        self.map.iter().map(|&i| values[i].clone()).collect()
    }

    /// Swaps the images of positions `i` and `j` in place.
    ///
    /// This is the elementary move of the local-search adversary.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn swap(&mut self, i: usize, j: usize) {
        self.map.swap(i, j);
    }

    /// Number of fixed points (`i` with `get(i) == i`).
    #[must_use]
    pub fn fixed_points(&self) -> usize {
        self.map.iter().enumerate().filter(|(i, &x)| *i == x).count()
    }

    /// Enumerates every permutation of `0..n` (in lexicographic order of their
    /// image vectors). Intended for exhaustive adversarial search with small
    /// `n`; `n` is capped at 10.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorParameter`] when `n > 10`.
    pub fn enumerate_all(n: usize) -> Result<Vec<Permutation>> {
        if n > 10 {
            return Err(GraphError::InvalidGeneratorParameter {
                reason: format!("refusing to enumerate {n}! permutations (n > 10)"),
            });
        }
        let mut out = Vec::new();
        let mut current: Vec<usize> = (0..n).collect();
        loop {
            out.push(Permutation { map: current.clone() });
            if !next_permutation(&mut current) {
                break;
            }
        }
        Ok(out)
    }
}

impl From<Permutation> for Vec<usize> {
    fn from(p: Permutation) -> Self {
        p.map
    }
}

/// Advances `v` to the lexicographically next permutation, returning `false`
/// when `v` was already the last one.
fn next_permutation(v: &mut [usize]) -> bool {
    if v.len() < 2 {
        return false;
    }
    let mut i = v.len() - 1;
    while i > 0 && v[i - 1] >= v[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = v.len() - 1;
    while v[j] <= v[i - 1] {
        j -= 1;
    }
    v.swap(i - 1, j);
    v[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_and_reversal() {
        let id = Permutation::identity(5);
        assert!(id.is_identity());
        assert_eq!(id.fixed_points(), 5);
        let rev = Permutation::reversal(5);
        assert_eq!(rev.get(0), 4);
        assert_eq!(rev.get(4), 0);
        assert_eq!(rev.fixed_points(), 1);
        assert!(rev.compose(&rev).is_identity());
    }

    #[test]
    fn rotation_wraps() {
        let r = Permutation::rotation(5, 2);
        assert_eq!(r.as_slice(), &[2, 3, 4, 0, 1]);
        assert!(Permutation::rotation(0, 3).is_empty());
        assert!(Permutation::rotation(4, 0).is_identity());
    }

    #[test]
    fn from_vec_validates() {
        assert!(Permutation::from_vec(vec![0, 1, 2]).is_ok());
        assert!(Permutation::from_vec(vec![0, 0, 2]).is_err());
        assert!(Permutation::from_vec(vec![0, 3]).is_err());
        assert!(Permutation::from_vec(vec![]).unwrap().is_identity());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn apply_permutes_values() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let v = p.apply(&["a", "b", "c"]);
        assert_eq!(v, vec!["c", "a", "b"]);
    }

    #[test]
    fn swap_changes_two_images() {
        let mut p = Permutation::identity(4);
        p.swap(0, 3);
        assert_eq!(p.as_slice(), &[3, 1, 2, 0]);
        assert_eq!(p.fixed_points(), 2);
    }

    #[test]
    fn random_permutations_are_valid_and_reproducible() {
        let a = Permutation::random(50, &mut StdRng::seed_from_u64(9));
        let b = Permutation::random(50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        // Validity: from_vec accepts the image vector.
        assert!(Permutation::from_vec(a.as_slice().to_vec()).is_ok());
    }

    #[test]
    fn enumerate_all_has_factorial_size() {
        assert_eq!(Permutation::enumerate_all(0).unwrap().len(), 1);
        assert_eq!(Permutation::enumerate_all(1).unwrap().len(), 1);
        assert_eq!(Permutation::enumerate_all(3).unwrap().len(), 6);
        assert_eq!(Permutation::enumerate_all(5).unwrap().len(), 120);
        assert!(Permutation::enumerate_all(11).is_err());
    }

    #[test]
    fn enumerate_all_entries_are_distinct() {
        let all = Permutation::enumerate_all(4).unwrap();
        for (i, p) in all.iter().enumerate() {
            for q in &all[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn conversion_to_vec() {
        let p = Permutation::from_vec(vec![1, 0]).unwrap();
        let v: Vec<usize> = p.into();
        assert_eq!(v, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn compose_rejects_size_mismatch() {
        let _ = Permutation::identity(3).compose(&Permutation::identity(4));
    }
}
