//! Connected-component labellings and the component-handling mode of the
//! experiment harness.
//!
//! A disconnected instance changes the semantics of a LOCAL execution: a
//! ball saturates when it has seen its whole **component**, so every radius,
//! output and verifier is implicitly component-scoped. [`ComponentLabels`]
//! makes that structure explicit — one canonical label per node, components
//! numbered in order of their smallest node index — and [`ComponentMode`]
//! lets callers choose between the historical "reject disconnected
//! instances" behaviour and the explicit per-component semantics.
//!
//! Labels are computed at freeze time by [`crate::Graph::freeze`]: the
//! parallel path runs a lock-free union-find over the CSR edge array (hook
//! the higher root onto the lower via compare-and-swap, so the final root of
//! every component is its minimum node index regardless of scheduling), the
//! serial path a plain BFS sweep. Both produce **bit-identical** labellings
//! because the canonical form — components numbered by smallest member,
//! sizes in label order — is independent of discovery order.

use std::sync::atomic::{AtomicU32, Ordering};

use rayon::prelude::*;

use crate::{Graph, NodeId};

/// How an experiment treats disconnected instances.
///
/// The historical behaviour ([`ComponentMode::RequireConnected`]) redraws
/// random families until they are connected and rejects instances that never
/// connect; [`ComponentMode::PerComponent`] accepts the instance as drawn and
/// scopes every measure (and "the ball saturates") to the component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ComponentMode {
    /// Only connected instances are valid; random families are redrawn and a
    /// persistently disconnected family is a hard
    /// [`crate::GraphError::Disconnected`].
    #[default]
    RequireConnected,
    /// Disconnected instances are first-class: the first draw is used as-is
    /// (no redraw loop, no derived-seed burn) and results are reported per
    /// component as well as aggregated.
    PerComponent,
}

/// A canonical connected-component labelling of a graph.
///
/// Component `c` is the `c`-th component in order of smallest node index, so
/// two labellings of the same graph are equal no matter how they were
/// computed — the property the parallel freeze is property-tested against.
///
/// # Examples
///
/// ```
/// use avglocal_graph::{ComponentLabels, Graph, Identifier};
///
/// let mut g = Graph::new();
/// let a = g.add_node(Identifier::new(0));
/// let b = g.add_node(Identifier::new(1));
/// let c = g.add_node(Identifier::new(2));
/// g.add_edge(a, c).unwrap();
/// let labels = ComponentLabels::of_graph(&g);
/// assert_eq!(labels.count(), 2);
/// assert_eq!(labels.label(a), 0);
/// assert_eq!(labels.label(b), 1);
/// assert_eq!(labels.label(c), 0); // same component as `a`
/// assert_eq!(labels.sizes(), &[2, 1]);
/// assert!(!labels.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// Component label of each node, indexed by node.
    labels: Vec<u32>,
    /// Number of nodes in each component, indexed by label.
    sizes: Vec<u32>,
}

impl ComponentLabels {
    /// Labels the components of `graph` with a sequential BFS sweep.
    #[must_use]
    pub fn of_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        serial_labels(n, |v, queue_cb| {
            for &u in graph.neighbors(NodeId::new(v as usize)) {
                queue_cb(u.index() as u32);
            }
        })
    }

    /// Labels the components of a CSR adjacency with a sequential BFS sweep
    /// — the serial reference the parallel labelling is tested against.
    #[must_use]
    pub(crate) fn of_csr_serial(offsets: &[u32], targets: &[u32]) -> Self {
        let n = offsets.len() - 1;
        serial_labels(n, |v, queue_cb| {
            for &u in &targets[offsets[v as usize] as usize..offsets[v as usize + 1] as usize] {
                queue_cb(u);
            }
        })
    }

    /// Labels the components of a CSR adjacency with a parallel lock-free
    /// union-find over the edge array.
    ///
    /// Every edge is processed by hooking the **higher** of the two current
    /// roots onto the lower one with a compare-and-swap, so the final root
    /// of each component is its minimum node index — a canonical choice that
    /// makes the result independent of how the pool interleaved the unions.
    /// The labelling is therefore bit-identical to
    /// [`ComponentLabels::of_csr_serial`] by construction (and by property
    /// test).
    #[must_use]
    pub(crate) fn of_csr_parallel(offsets: &[u32], targets: &[u32]) -> Self {
        let n = offsets.len() - 1;
        if n == 0 {
            return ComponentLabels { labels: Vec::new(), sizes: Vec::new() };
        }
        let parents: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
        // Union every edge; nodes are claimed in dynamic chunks from the
        // pool, and each node unions its forward edges (u > v), so every
        // undirected edge is processed exactly once.
        (0..n).into_par_iter().for_each(|v| {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            for &u in &targets[lo..hi] {
                if (u as usize) > v {
                    union(&parents, v as u32, u);
                }
            }
        });
        // All unions are done (the parallel call is a barrier): flatten every
        // node to its root in parallel, then compact the roots to labels in
        // node order.
        let roots: Vec<u32> = (0..n).into_par_iter().map(|v| find(&parents, v as u32)).collect();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = Vec::with_capacity(n);
        let mut sizes: Vec<u32> = Vec::new();
        for &root in &roots {
            let slot = &mut label_of_root[root as usize];
            if *slot == u32::MAX {
                *slot = sizes.len() as u32;
                sizes.push(0);
            }
            labels.push(*slot);
            sizes[*slot as usize] += 1;
        }
        ComponentLabels { labels, sizes }
    }

    /// Number of connected components (0 for the empty graph).
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn label(&self, node: NodeId) -> u32 {
        self.labels[node.index()]
    }

    /// All labels, indexed by node.
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of nodes per component, indexed by label.
    #[must_use]
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Number of labelled nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when there is at most one component (the empty graph
    /// counts as connected, matching [`crate::traversal::is_connected`]).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.sizes.len() <= 1
    }
}

/// Sequential BFS labelling over any adjacency representation: `neighbors`
/// is called with a node and a callback receiving each neighbour.
fn serial_labels(n: usize, neighbors: impl Fn(u32, &mut dyn FnMut(u32))) -> ComponentLabels {
    let mut labels = vec![u32::MAX; n];
    let mut sizes: Vec<u32> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let label = sizes.len() as u32;
        let mut size = 0u32;
        labels[start as usize] = label;
        queue.push(start);
        while let Some(v) = queue.pop() {
            size += 1;
            neighbors(v, &mut |u| {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = label;
                    queue.push(u);
                }
            });
        }
        sizes.push(size);
    }
    ComponentLabels { labels, sizes }
}

/// Follows parent pointers to the root of `x`, halving the path as it goes.
///
/// The halving stores only ever replace a parent with a *current ancestor*
/// (guarded by compare-and-swap), so concurrent finds remain correct.
fn find(parents: &[AtomicU32], mut x: u32) -> u32 {
    loop {
        let parent = parents[x as usize].load(Ordering::Acquire);
        if parent == x {
            return x;
        }
        let grandparent = parents[parent as usize].load(Ordering::Acquire);
        if grandparent != parent {
            // Path halving: skip over `parent`. A failed CAS just means
            // someone else already improved the pointer.
            let _ = parents[x as usize].compare_exchange(
                parent,
                grandparent,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
        x = parent;
    }
}

/// Merges the sets containing `a` and `b`, hooking the higher root onto the
/// lower so the surviving root of every component is its minimum node.
fn union(parents: &[AtomicU32], a: u32, b: u32) {
    loop {
        let root_a = find(parents, a);
        let root_b = find(parents, b);
        if root_a == root_b {
            return;
        }
        let (high, low) = if root_a > root_b { (root_a, root_b) } else { (root_b, root_a) };
        if parents[high as usize]
            .compare_exchange(high, low, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return;
        }
        // `high` stopped being a root under us; retry with fresh roots.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, traversal, Identifier};

    fn assert_matches_traversal(graph: &Graph, labels: &ComponentLabels) {
        let expected = traversal::connected_components(graph);
        assert_eq!(labels.count(), expected.len());
        for (c, nodes) in expected.iter().enumerate() {
            assert_eq!(labels.sizes()[c] as usize, nodes.len());
            for &v in nodes {
                assert_eq!(labels.label(v), c as u32, "node {v}");
            }
        }
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = generators::cycle(12).unwrap();
        let labels = ComponentLabels::of_graph(&g);
        assert_eq!(labels.count(), 1);
        assert!(labels.is_connected());
        assert_eq!(labels.sizes(), &[12]);
        assert!(labels.labels().iter().all(|&l| l == 0));
        assert_matches_traversal(&g, &labels);
    }

    #[test]
    fn empty_graph_is_connected_with_zero_components() {
        let labels = ComponentLabels::of_graph(&Graph::new());
        assert_eq!(labels.count(), 0);
        assert_eq!(labels.node_count(), 0);
        assert!(labels.is_connected());
    }

    #[test]
    fn isolated_nodes_get_their_own_components() {
        let mut g = Graph::new();
        for i in 0..5 {
            g.add_node(Identifier::new(i));
        }
        g.add_edge(NodeId::new(1), NodeId::new(3)).unwrap();
        let labels = ComponentLabels::of_graph(&g);
        assert_eq!(labels.count(), 4);
        assert_eq!(labels.label(NodeId::new(1)), labels.label(NodeId::new(3)));
        assert_eq!(labels.sizes(), &[1, 2, 1, 1]);
        assert_matches_traversal(&g, &labels);
    }

    #[test]
    fn components_are_numbered_by_smallest_member() {
        // Edges chosen so BFS discovery order differs from node order inside
        // the components; the labelling must still be canonical.
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_node(Identifier::new(i));
        }
        g.add_edge(NodeId::new(5), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(4), NodeId::new(0)).unwrap();
        g.add_edge(NodeId::new(3), NodeId::new(2)).unwrap();
        let labels = ComponentLabels::of_graph(&g);
        // Component 0 contains node 0, component 1 node 1, component 2 node 2.
        assert_eq!(labels.label(NodeId::new(0)), 0);
        assert_eq!(labels.label(NodeId::new(4)), 0);
        assert_eq!(labels.label(NodeId::new(1)), 1);
        assert_eq!(labels.label(NodeId::new(5)), 1);
        assert_eq!(labels.label(NodeId::new(2)), 2);
        assert_eq!(labels.label(NodeId::new(3)), 2);
    }

    #[test]
    fn serial_and_parallel_csr_labellings_agree() {
        let graphs = [
            generators::cycle(64).unwrap(),
            generators::path(33).unwrap(),
            generators::grid(5, 7).unwrap(),
            {
                let mut g = Graph::new();
                for i in 0..40 {
                    g.add_node(Identifier::new(i));
                }
                for i in 0..20u64 {
                    let u = NodeId::new((i * 7 % 40) as usize);
                    let v = NodeId::new((i * 11 % 40) as usize);
                    if u != v && !g.contains_edge(u, v) {
                        g.add_edge(u, v).unwrap();
                    }
                }
                g
            },
        ];
        for g in &graphs {
            let csr = g.freeze_serial();
            let serial = ComponentLabels::of_csr_serial(csr.offsets(), csr.targets());
            let parallel = ComponentLabels::of_csr_parallel(csr.offsets(), csr.targets());
            assert_eq!(serial, parallel);
            assert_matches_traversal(g, &serial);
        }
    }

    #[test]
    fn component_mode_default_requires_connected() {
        assert_eq!(ComponentMode::default(), ComponentMode::RequireConnected);
    }
}
