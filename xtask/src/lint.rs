//! The workspace-invariant linter behind `cargo xtask lint`.
//!
//! Five rules encode conventions this repo established in earlier PRs (see
//! ARCHITECTURE.md, "Static analysis & concurrency audit"):
//!
//! 1. `safety-comment` — every `unsafe` site (block, `unsafe fn`, `unsafe
//!    impl`) carries a `// SAFETY:` (or `/// # Safety`) comment within the
//!    preceding [`SAFETY_LOOKBACK`] lines.
//! 2. `determinism` — result-producing code under the library roots
//!    (`crates/*`) must not read wall clocks (`Instant`, `SystemTime`),
//!    thread identity (`thread::current`), or use the randomized-iteration
//!    hash containers (`HashMap`, `HashSet`). Legitimate uses (keyed lookups
//!    that never iterate into results, benchmark timing) are allowlisted
//!    with a reason in `xtask/lint-allow.txt`.
//! 3. `no-panic-decode` — the hardened decode surfaces listed in
//!    [`Config::hardened`] parse untrusted bytes and must stay panic-free:
//!    no `unwrap`/`expect`, no `panic!` family, no asserts.
//! 4. `non-exhaustive-error-enum` — every `pub enum *Error` under the
//!    library roots is `#[non_exhaustive]`, so downstream matches keep
//!    compiling when a variant is added.
//! 5. `relaxed-ordering` — every `Ordering::Relaxed` carries a nearby
//!    `// ordering:` comment justifying why relaxed suffices (the loom
//!    suite model-checks the pool's uses; the comment records the argument).
//!
//! Test code is exempt from every rule except `safety-comment`: files under
//! a package's `tests/` or `benches/` target directory, and `#[cfg(test)]`
//! modules (tracked by brace depth).
//!
//! The scanner is line-based over comment- and string-stripped source. It is
//! a convention enforcer for first-party code, not a parser: pathological
//! formatting can evade it, and that is acceptable — the rules exist to stop
//! honest drift, and CI runs it on every change.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How many lines above an `unsafe` site a `SAFETY:` comment may sit.
pub const SAFETY_LOOKBACK: usize = 6;
/// How many lines above an `Ordering::Relaxed` an `ordering:` comment may sit.
pub const ORDERING_LOOKBACK: usize = 8;

/// What to scan and which files get the stricter per-surface rules.
pub struct Config {
    /// Directories (relative to the scan root) walked for `.rs` files.
    pub roots: Vec<PathBuf>,
    /// Allowlist file (relative to the scan root); `None` or a missing file
    /// means an empty allowlist.
    pub allowlist: Option<PathBuf>,
    /// Files (relative to the scan root) held to `no-panic-decode`.
    pub hardened: Vec<PathBuf>,
    /// Path prefixes whose code is "library" code: `determinism` and
    /// `non-exhaustive-error-enum` apply only here.
    pub library_roots: Vec<PathBuf>,
}

impl Config {
    /// The real workspace configuration `cargo xtask lint` runs with.
    pub fn workspace(root: &Path) -> Config {
        let roots = ["crates", "compat", "examples", "tests", "xtask/src"]
            .iter()
            .map(PathBuf::from)
            .filter(|dir| root.join(dir).is_dir())
            .collect();
        Config {
            roots,
            allowlist: Some(PathBuf::from("xtask/lint-allow.txt")),
            hardened: vec![
                PathBuf::from("crates/graph/src/snapshot.rs"),
                PathBuf::from("crates/graph/src/io.rs"),
            ],
            library_roots: vec![PathBuf::from("crates")],
        }
    }
}

/// One rule violation, formatted as `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the scan root, with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `safety-comment`.
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Runs every rule over the configured roots and returns the surviving
/// violations, sorted by path and line. An empty vector means clean.
pub fn run(root: &Path, config: &Config) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut allow = match &config.allowlist {
        Some(rel) => load_allowlist(root, rel, &mut violations),
        None => Vec::new(),
    };

    let mut files = Vec::new();
    for dir in &config.roots {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(source) => {
                let file = analyze(&rel, &source);
                check_file(&file, config, &mut allow, &mut violations);
            }
            Err(err) => violations.push(Violation {
                path: rel,
                line: 0,
                rule: "io",
                message: format!("unreadable source file: {err}"),
            }),
        }
    }

    // A stale allowlist entry is itself a violation: the list documents
    // *live* exceptions, and dead entries would silently re-permit the
    // pattern if the code grows it back.
    let allow_path = config
        .allowlist
        .as_ref()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .unwrap_or_default();
    for entry in &allow {
        if !entry.used {
            violations.push(Violation {
                path: allow_path.clone(),
                line: entry.line,
                rule: "allowlist",
                message: format!(
                    "stale entry `{} {}`: nothing matches it any more — remove it",
                    entry.path, entry.rule
                ),
            });
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    violations
}

/// One allowlist line: `<path> <rule>  # reason`.
struct AllowEntry {
    path: String,
    rule: String,
    /// Line in the allowlist file, for stale-entry reports.
    line: usize,
    used: bool,
}

fn load_allowlist(root: &Path, rel: &Path, violations: &mut Vec<Violation>) -> Vec<AllowEntry> {
    let display = rel.to_string_lossy().replace('\\', "/");
    let Ok(text) = fs::read_to_string(root.join(rel)) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (spec, reason) = match trimmed.split_once('#') {
            Some((spec, reason)) => (spec.trim(), reason.trim()),
            None => (trimmed, ""),
        };
        let fields: Vec<&str> = spec.split_whitespace().collect();
        if fields.len() != 2 {
            violations.push(Violation {
                path: display.clone(),
                line,
                rule: "allowlist",
                message: format!(
                    "malformed entry `{trimmed}` (expected `<path> <rule>  # reason`)"
                ),
            });
            continue;
        }
        if reason.is_empty() {
            violations.push(Violation {
                path: display.clone(),
                line,
                rule: "allowlist",
                message: format!(
                    "entry `{} {}` has no reason — every exception must say why it is sound",
                    fields[0], fields[1]
                ),
            });
            continue;
        }
        entries.push(AllowEntry {
            path: fields[0].to_string(),
            rule: fields[1].to_string(),
            line,
            used: false,
        });
    }
    entries
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|name| name == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// A source line split into its code text (string literals blanked) and the
/// concatenated text of any comments ending on it.
#[derive(Default)]
struct LineText {
    code: String,
    comment: String,
}

struct SourceFile {
    rel: String,
    lines: Vec<LineText>,
    /// `lines[i]` is inside a `#[cfg(test)]` item.
    in_test: Vec<bool>,
    /// The whole file is a test or bench target (under `tests/`/`benches/`).
    is_test_target: bool,
}

fn analyze(rel: &str, source: &str) -> SourceFile {
    let lines = strip_lines(source);
    let in_test = mark_cfg_test(&lines);
    // The first component is the package directory; a `tests` or `benches`
    // directory anywhere below it marks a cargo test/bench target. (The
    // workspace's integration-test *package* is itself named `tests`, so the
    // first component deliberately does not count.)
    let is_test_target = Path::new(rel)
        .components()
        .skip(1)
        .any(|c| matches!(c.as_os_str().to_str(), Some("tests" | "benches")));
    SourceFile { rel: rel.to_string(), lines, in_test, is_test_target }
}

/// Splits source into per-line code and comment text: line and block
/// comments are routed to `comment`, string/char literal *contents* are
/// blanked from `code` (the delimiting quotes survive), and everything else
/// stays in `code`. Multi-line strings and block comments carry their state
/// across lines; raw strings (`r#"…"#`) and nested block comments are
/// handled; `'a` lifetimes are distinguished from `'a'` char literals.
fn strip_lines(source: &str) -> Vec<LineText> {
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = source.chars().collect();
    let mut lines = vec![LineText::default()];
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(LineText::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().expect("lines is never empty");
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' || (c == 'b' && next == Some('r')) {
                    let at = if c == 'b' { i + 1 } else { i };
                    if let Some(hashes) = raw_string_hashes(&chars, at) {
                        line.code.push('"');
                        state = State::RawStr(hashes);
                        i = at + 2 + hashes as usize;
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        line.code.push_str("''");
                        i = end + 1;
                    } else {
                        line.code.push('\'');
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character, but never skip a newline:
                    // a `\` line continuation must still break the line.
                    i += if chars.get(i + 1) == Some(&'\n') { 1 } else { 2 };
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let n = hashes as usize;
                if c == '"' && (1..=n).all(|k| chars.get(i + k) == Some(&'#')) {
                    line.code.push('"');
                    state = State::Code;
                    i += 1 + n;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

/// If `chars[at] == 'r'` begins a raw string, returns its hash count.
fn raw_string_hashes(chars: &[char], at: usize) -> Option<u32> {
    debug_assert_eq!(chars.get(at), Some(&'r'));
    let mut hashes = 0u32;
    let mut j = at + 1;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// If `chars[at] == '\''` begins a char (or byte-char) literal, returns the
/// index of its closing quote; `None` means it is a lifetime.
fn char_literal_end(chars: &[char], at: usize) -> Option<usize> {
    debug_assert_eq!(chars.get(at), Some(&'\''));
    if chars.get(at + 1) == Some(&'\\') {
        // Escapes are at most `\u{10FFFF}` — scan a short bounded window.
        (at + 3..at + 12).find(|&j| chars.get(j) == Some(&'\''))
    } else if chars.get(at + 2) == Some(&'\'') && chars.get(at + 1) != Some(&'\'') {
        Some(at + 2)
    } else {
        None
    }
}

/// Marks lines inside `#[cfg(test)]` items by tracking brace depth from the
/// attribute to the close of the item it introduces.
fn mark_cfg_test(lines: &[LineText]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut region_close: Option<i64> = None;
    let mut pending = false;
    for (index, line) in lines.iter().enumerate() {
        if region_close.is_none()
            && (line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test"))
        {
            pending = true;
        }
        in_test[index] = pending || region_close.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        region_close = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close.is_some_and(|close| depth <= close) {
                        region_close = None;
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

/// True when `code` contains `word` with non-identifier characters (or the
/// line boundary) on both sides.
fn word_match(code: &str, word: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before = code[..start].chars().next_back().is_none_or(|c| !is_ident(c));
        let after = code[end..].chars().next().is_none_or(|c| !is_ident(c));
        if before && after {
            return true;
        }
        from = end;
    }
    false
}

fn comment_near(
    file: &SourceFile,
    line: usize,
    lookback: usize,
    matches: impl Fn(&str) -> bool,
) -> bool {
    let from = line.saturating_sub(lookback);
    file.lines[from..=line].iter().any(|l| matches(&l.comment))
}

fn under(rel: &str, prefixes: &[PathBuf]) -> bool {
    prefixes.iter().any(|prefix| Path::new(rel).starts_with(prefix))
}

fn check_file(
    file: &SourceFile,
    config: &Config,
    allow: &mut [AllowEntry],
    violations: &mut Vec<Violation>,
) {
    let library = under(&file.rel, &config.library_roots);
    let hardened = config.hardened.iter().any(|h| Path::new(&file.rel) == h);
    let mut pending = Vec::new();
    // Dedup key so e.g. a file full of `HashMap` lookups reports the token
    // once per file, not once per line.
    let mut reported_tokens: BTreeSet<&'static str> = BTreeSet::new();

    for (index, line) in file.lines.iter().enumerate() {
        let n = index + 1;
        let code = line.code.as_str();

        // Rule 1: safety-comment — applies everywhere, test code included.
        if word_match(code, "unsafe")
            && !comment_near(file, index, SAFETY_LOOKBACK, |c| {
                c.contains("SAFETY:") || c.contains("# Safety")
            })
        {
            pending.push(Violation {
                path: file.rel.clone(),
                line: n,
                rule: "safety-comment",
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within the preceding {SAFETY_LOOKBACK} lines"
                ),
            });
        }

        let exempt = file.is_test_target || file.in_test[index];

        // Rule 2: determinism — library code only.
        if library && !exempt {
            let tokens: [(&str, bool, &str); 5] = [
                (
                    "Instant",
                    word_match(code, "Instant"),
                    "wall-clock reads are nondeterministic across runs",
                ),
                (
                    "SystemTime",
                    word_match(code, "SystemTime"),
                    "wall-clock reads are nondeterministic across runs",
                ),
                (
                    "thread::current",
                    code.contains("thread::current"),
                    "thread identity leaks scheduling nondeterminism",
                ),
                (
                    "HashMap",
                    word_match(code, "HashMap"),
                    "iteration order is randomized; keyed lookups that never iterate into results need an allowlist entry saying so",
                ),
                (
                    "HashSet",
                    word_match(code, "HashSet"),
                    "iteration order is randomized; membership-only uses need an allowlist entry saying so",
                ),
            ];
            for (token, hit, why) in tokens {
                if hit && !reported_tokens.contains(token) {
                    reported_tokens.insert(token);
                    pending.push(Violation {
                        path: file.rel.clone(),
                        line: n,
                        rule: "determinism",
                        message: format!("`{token}` in result-producing code: {why}"),
                    });
                }
            }
        }

        // Rule 3: no-panic-decode — hardened untrusted-input surfaces.
        if hardened && !exempt {
            // Method tokens match by substring; macro tokens by word so
            // `debug_assert_eq!` (compiled out of release decode paths, used
            // for encode-side invariants on trusted data) does not fire.
            let method_hit = |token: &str| code.contains(token);
            let macro_hit = |token: &str| word_match(code, token);
            for (token, hit) in [
                (".unwrap()", method_hit(".unwrap()")),
                (".expect(", method_hit(".expect(")),
                ("panic!", macro_hit("panic!")),
                ("unreachable!", macro_hit("unreachable!")),
                ("todo!", macro_hit("todo!")),
                ("unimplemented!", macro_hit("unimplemented!")),
                ("assert!", macro_hit("assert!")),
                ("assert_eq!", macro_hit("assert_eq!")),
                ("assert_ne!", macro_hit("assert_ne!")),
            ] {
                if hit {
                    pending.push(Violation {
                        path: file.rel.clone(),
                        line: n,
                        rule: "no-panic-decode",
                        message: format!(
                            "`{token}` on a hardened decode surface — untrusted input must produce `Err`, never a panic"
                        ),
                    });
                }
            }
        }

        // Rule 4: non-exhaustive-error-enum — library code only.
        if library && !exempt {
            if let Some(name) = public_error_enum_name(code) {
                let annotated = (0..index)
                    .rev()
                    .map(|j| &file.lines[j])
                    .take_while(|l| {
                        let t = l.code.trim();
                        t.is_empty() || t.starts_with("#[")
                    })
                    .any(|l| l.code.contains("non_exhaustive"));
                if !annotated {
                    pending.push(Violation {
                        path: file.rel.clone(),
                        line: n,
                        rule: "non-exhaustive-error-enum",
                        message: format!(
                            "public error enum `{name}` is not `#[non_exhaustive]` — adding a variant would break downstream matches"
                        ),
                    });
                }
            }
        }

        // Rule 5: relaxed-ordering — everywhere outside tests.
        if !exempt
            && code.contains("Ordering::Relaxed")
            && !comment_near(file, index, ORDERING_LOOKBACK, |c| c.contains("ordering:"))
        {
            pending.push(Violation {
                path: file.rel.clone(),
                line: n,
                rule: "relaxed-ordering",
                message: format!(
                    "`Ordering::Relaxed` without an `// ordering:` justification within the preceding {ORDERING_LOOKBACK} lines"
                ),
            });
        }
    }

    for violation in pending {
        let allowed = allow
            .iter_mut()
            .find(|entry| entry.path == violation.path && entry.rule == violation.rule);
        match allowed {
            Some(entry) => entry.used = true,
            None => violations.push(violation),
        }
    }
}

/// If `code` declares a public enum whose name ends in `Error`, returns the
/// name.
fn public_error_enum_name(code: &str) -> Option<&str> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("pub enum ")?;
    let name: &str =
        rest.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).next().unwrap_or("");
    name.ends_with("Error").then_some(name)
}
