//! Workspace automation for the avglocal repo, driven by `cargo xtask`.
//!
//! The library form exists so the linter's rules can be exercised against
//! seeded fixture trees from integration tests (`tests/lint_rules.rs`); the
//! `xtask` binary is a thin argument-parsing shell around [`lint::run`].

#![forbid(unsafe_code)]

pub mod lint;
