//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! * `lint` — run the repo-invariant linter over the workspace sources and
//!   exit non-zero on any violation. See [`xtask::lint`] for the rule table.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next();
    match command.as_deref() {
        Some("lint") => {
            let root = workspace_root();
            let violations = xtask::lint::run(&root, &xtask::lint::Config::workspace(&root));
            for violation in &violations {
                eprintln!("{violation}");
            }
            if violations.is_empty() {
                eprintln!("xtask lint: workspace clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}` (expected: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `cargo xtask` runs with the xtask crate as cwd or the
/// workspace root depending on invocation, so anchor on this file's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(PathBuf::from).unwrap_or(manifest)
}
