//! Fixture-driven tests for the workspace linter: each rule must fire at
//! the seeded file and line, and nowhere else — including the negative
//! controls (commented twins, `debug_assert_eq!`, `#[cfg(test)]` code).

use std::path::{Path, PathBuf};

use xtask::lint::{run, Config, Violation};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn fixture_config(allowlist: Option<&str>) -> Config {
    Config {
        roots: vec![PathBuf::from("tests/fixtures/src")],
        allowlist: allowlist.map(PathBuf::from),
        hardened: vec![PathBuf::from("tests/fixtures/src/decode_surface.rs")],
        library_roots: vec![PathBuf::from("tests/fixtures/src")],
    }
}

fn hits<'a>(violations: &'a [Violation], rule: &str) -> Vec<(&'a str, usize)> {
    violations.iter().filter(|v| v.rule == rule).map(|v| (v.path.as_str(), v.line)).collect()
}

#[test]
fn every_rule_fires_at_the_seeded_site() {
    let violations = run(root(), &fixture_config(None));
    assert_eq!(
        hits(&violations, "safety-comment"),
        vec![("tests/fixtures/src/unsafe_sites.rs", 4)],
        "the commented twin at line 9 must stay clean"
    );
    assert_eq!(
        hits(&violations, "determinism"),
        vec![
            ("tests/fixtures/src/nondeterminism.rs", 3),
            ("tests/fixtures/src/nondeterminism.rs", 4),
            ("tests/fixtures/src/nondeterminism.rs", 5),
            ("tests/fixtures/src/nondeterminism.rs", 6),
            ("tests/fixtures/src/nondeterminism.rs", 9),
        ],
        "each token reports once per file, at its first occurrence"
    );
    assert_eq!(
        hits(&violations, "no-panic-decode"),
        vec![
            ("tests/fixtures/src/decode_surface.rs", 4),
            ("tests/fixtures/src/decode_surface.rs", 5),
            ("tests/fixtures/src/decode_surface.rs", 6),
        ],
        "`debug_assert_eq!` at line 7 must not fire"
    );
    assert_eq!(
        hits(&violations, "non-exhaustive-error-enum"),
        vec![("tests/fixtures/src/error_enums.rs", 3)],
        "the `#[non_exhaustive]` twin at line 8 must stay clean"
    );
    assert_eq!(
        hits(&violations, "relaxed-ordering"),
        vec![("tests/fixtures/src/relaxed.rs", 6)],
        "the justified twin at line 11 must stay clean"
    );
    // Nothing else fires — in particular nothing from test_exempt.rs.
    assert_eq!(violations.len(), 11, "unexpected extra violations: {violations:#?}");
}

#[test]
fn allowlist_silences_entries_and_flags_its_own_rot() {
    let violations = run(root(), &fixture_config(Some("tests/fixtures/allow-fixture.txt")));
    // The determinism seeds are allowlisted away with a reason…
    assert!(hits(&violations, "determinism").is_empty(), "{violations:#?}");
    // …the reason-less entry is rejected, so its rule still fires…
    assert_eq!(hits(&violations, "relaxed-ordering"), vec![("tests/fixtures/src/relaxed.rs", 6)]);
    // …and the allowlist's own defects (stale entry, missing reason) are
    // reported at their own lines.
    assert_eq!(
        hits(&violations, "allowlist"),
        vec![("tests/fixtures/allow-fixture.txt", 3), ("tests/fixtures/allow-fixture.txt", 4),]
    );
}

/// The enforcement test: the real workspace, under the real configuration,
/// is clean. CI runs `cargo xtask lint` too; this copy makes plain
/// `cargo test` catch violations without the extra step.
#[test]
fn the_workspace_is_clean() {
    let workspace = root().parent().expect("xtask sits inside the workspace");
    let violations = run(workspace, &Config::workspace(workspace));
    assert!(violations.is_empty(), "workspace lint violations: {violations:#?}");
}
