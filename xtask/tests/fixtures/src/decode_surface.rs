//! Fixture: panic sites on a hardened decode surface.

pub fn decode(bytes: &[u8]) -> u32 {
    assert!(bytes.len() >= 4);
    let head: [u8; 4] = bytes[..4].try_into().unwrap();
    let tail = bytes.get(4).copied().expect("tail byte");
    debug_assert_eq!(tail, 0);
    u32::from_le_bytes(head)
}
