//! Fixture: one bare unsafe site, one with the required comment.

pub fn uncovered(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}

pub fn covered(ptr: *const u32) -> u32 {
    // SAFETY: the caller promises `ptr` is valid (fixture).
    unsafe { *ptr }
}
