//! Fixture: public error enums with and without the attribute.

pub enum BareError {
    Oops,
}

#[non_exhaustive]
pub enum MarkedError {
    Oops,
}
