//! Fixture: code inside cfg(test) is exempt from every rule but safety.

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn helper(counter: &AtomicUsize) -> usize {
        let _unused: Option<HashMap<u32, u32>> = None;
        counter.fetch_add(1, Ordering::Relaxed)
    }
}
