//! Fixture: every determinism token, one per line.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

pub fn now() -> Instant {
    let _id = std::thread::current().id();
    Instant::now()
}
