//! Fixture: Relaxed uses with and without a justification.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn read(counter: &AtomicUsize) -> usize {
    // ordering: a monotonic counter read; staleness is fine (fixture).
    counter.load(Ordering::Relaxed)
}
