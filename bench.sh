#!/usr/bin/env sh
# Perf trajectory for the radius engine: runs the E1 wall-time benchmark
# (incremental vs from-scratch baseline, the run_node probe loop —
# FrozenExecutor session reuse vs per-call freezing — the skewed scheduling
# block — work-stealing vs static chunks on the clustered adversarial
# assignment — the pool block — persistent pool vs spawn-per-call — and the
# freeze block — parallel vs serial Graph::freeze — and the snapshot block —
# CsrGraph::to_bytes vs the validating from_bytes, with bytes/edge density —
# and the service block — sustained query load through the resilient
# radius-query service vs raw probes, qps + p99 with a 3x overhead gate —
# and the service_batch block — the batched, sharded query_batch path vs a
# single-query loop, gated at >= 2x batched throughput wherever the
# machine has real parallelism — and the sampling block — the 10% uniform
# sample estimate vs the exact sweep, relative error gated at a 25% budget
# and the sampled path gated at 5x the exact wall time with real cores,
# with frontier rows an order of magnitude past the exact sweep) and
# refreshes BENCH_e1.json. The dedicated service harness is
# `cargo run --release -p avglocal-bench --bin service_load`.
#
# Pin the pool for reproducible timings: AVG_LOCAL_THREADS=4 ./bench.sh
#
# Usage: ./bench.sh [--quick] [--check]
#
# --check evaluates the regression-gate table (one speedup gate per recorded
# block) and exits non-zero if any applicable gate regressed — the step CI
# runs on every push (`AVG_LOCAL_THREADS=4 ./bench.sh --quick --check`).
set -eu
cd "$(dirname "$0")"
cargo run --release -p avglocal-bench --bin bench_e1 -- "$@"
