#!/usr/bin/env sh
# Perf trajectory for the radius engine: runs the E1 wall-time benchmark
# (incremental vs from-scratch baseline, plus the run_node probe loop —
# FrozenExecutor session reuse vs per-call freezing) and refreshes
# BENCH_e1.json.
#
# Usage: ./bench.sh [--quick]
set -eu
cd "$(dirname "$0")"
cargo run --release -p avglocal-bench --bin bench_e1 -- "$@"
